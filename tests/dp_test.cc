#include <gtest/gtest.h>

#include <cmath>

#include "dp/laplace.h"
#include "dp/privsql.h"
#include "dp/svt.h"
#include "dp/truncation.h"
#include "dp/tsens_dp.h"
#include "query/eval.h"
#include "sensitivity/tsens.h"
#include "sensitivity/tsens_engine.h"
#include "test_util.h"
#include "workload/queries.h"
#include "workload/social.h"
#include "workload/tpch.h"

namespace lsens {
namespace {

using testing::MakeFigure3Example;

TEST(LaplaceTest, ZeroScaleIsDeterministic) {
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(SampleLaplace(rng, 0.0), 0.0);
}

TEST(LaplaceTest, EmpiricalMoments) {
  Rng rng(2);
  const double scale = 3.0;
  const int n = 200000;
  double sum = 0.0;
  double sum_abs = 0.0;
  for (int i = 0; i < n; ++i) {
    double x = SampleLaplace(rng, scale);
    sum += x;
    sum_abs += std::abs(x);
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);         // mean 0
  EXPECT_NEAR(sum_abs / n, scale, 0.05);   // E|X| = scale
}

TEST(LaplaceTest, MechanismCentersOnValue) {
  Rng rng(3);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    sum += LaplaceMechanism(rng, 100.0, /*sensitivity=*/2.0,
                            /*epsilon=*/1.0);
  }
  EXPECT_NEAR(sum / n, 100.0, 0.2);
}

TEST(SvtTest, NearNoiselessStopsAtFirstAboveThreshold) {
  Rng rng(4);
  SparseVector svt(rng, /*epsilon=*/1e6, /*threshold=*/10.0);
  EXPECT_FALSE(svt.Check(3.0));
  EXPECT_FALSE(svt.Check(9.9));
  EXPECT_TRUE(svt.Check(10.1));
  EXPECT_TRUE(svt.exhausted());
}

TEST(SvtTest, NoiseScalesWithQuerySensitivity) {
  // With large query sensitivity, a clearly-below query fires often.
  int fired = 0;
  const int trials = 2000;
  for (int t = 0; t < trials; ++t) {
    Rng rng(1000 + static_cast<uint64_t>(t));
    SparseVector svt(rng, /*epsilon=*/1.0, /*threshold=*/0.0,
                     /*query_sensitivity=*/100.0);
    if (svt.Check(-50.0)) ++fired;
  }
  EXPECT_GT(fired, trials / 10);  // plenty of spurious firings
  // With sensitivity 1, -50 is ~12.5 noise scales below: almost never fires.
  fired = 0;
  for (int t = 0; t < trials; ++t) {
    Rng rng(5000 + static_cast<uint64_t>(t));
    SparseVector svt(rng, /*epsilon=*/1.0, /*threshold=*/0.0,
                     /*query_sensitivity=*/1.0);
    if (svt.Check(-50.0)) ++fired;
  }
  EXPECT_LT(fired, trials / 100);
}

TEST(TruncationTest, BySensitivityRemovesHighRows) {
  Database db;
  auto* r = db.AddRelation("R", {"A"});
  r->AppendRow({1});
  r->AppendRow({2});
  r->AppendRow({3});
  std::vector<Count> sens{Count(5), Count(1), Count(3)};
  auto removed = TruncateBySensitivity(db, "R", sens, Count(3));
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(*removed, 1u);
  ASSERT_EQ(r->NumRows(), 2u);
  EXPECT_EQ(r->At(0, 0), 2);  // order-stable
  EXPECT_EQ(r->At(1, 0), 3);
}

TEST(TruncationTest, BySensitivityRejectsMisalignedVector) {
  Database db;
  auto* r = db.AddRelation("R", {"A"});
  r->AppendRow({1});
  EXPECT_FALSE(TruncateBySensitivity(db, "R", {}, Count(1)).ok());
  EXPECT_FALSE(TruncateBySensitivity(db, "S", {Count(1)}, Count(1)).ok());
}

TEST(TruncationTest, ByFrequencyDropsWholeKeys) {
  Database db;
  auto* r = db.AddRelation("R", {"K", "V"});
  r->AppendRow({1, 10});
  r->AppendRow({1, 11});
  r->AppendRow({1, 12});
  r->AppendRow({2, 20});
  auto removed = TruncateByFrequency(db, "R", {0}, 2);
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(*removed, 3u);  // all of key 1 dropped, not just the excess
  ASSERT_EQ(r->NumRows(), 1u);
  EXPECT_EQ(r->At(0, 0), 2);
}

TEST(TruncationTest, RowsAboveFrequencyHistogram) {
  Database db;
  auto* r = db.AddRelation("R", {"K"});
  for (int i = 0; i < 3; ++i) r->AppendRow({1});
  for (int i = 0; i < 1; ++i) r->AppendRow({2});
  auto hist = RowsAboveFrequency(db, "R", {0}, 4);
  ASSERT_TRUE(hist.ok());
  // f=0: all 4 rows have freq > 0; f=1: key1's 3 rows; f=2: 3; f=3: 0.
  EXPECT_EQ((*hist)[0], 4u);
  EXPECT_EQ((*hist)[1], 3u);
  EXPECT_EQ((*hist)[2], 3u);
  EXPECT_EQ((*hist)[3], 0u);
  EXPECT_EQ((*hist)[4], 0u);
}

TEST(TruncationTest, KeysAboveFrequencyHistogram) {
  Database db;
  auto* r = db.AddRelation("R", {"K"});
  for (int i = 0; i < 3; ++i) r->AppendRow({1});
  for (int i = 0; i < 2; ++i) r->AppendRow({2});
  r->AppendRow({3});
  auto hist = KeysAboveFrequency(db, "R", {0}, 3);
  ASSERT_TRUE(hist.ok());
  // f=0: keys {1,2,3}; f=1: {1,2}; f=2: {1}; f=3: none.
  EXPECT_EQ((*hist)[0], 3u);
  EXPECT_EQ((*hist)[1], 2u);
  EXPECT_EQ((*hist)[2], 1u);
  EXPECT_EQ((*hist)[3], 0u);
}

// The load-bearing identity behind TSensDP's O(1)-per-threshold truncated
// counts: Q(T(D,i)) == Q(D) − Σ_{t in PR, δ(t) > i} δ(t).
TEST(TSensDpTest, AdditiveTruncatedCountsMatchRealTruncation) {
  TpchOptions topts;
  topts.scale = 0.001;
  Database db = MakeTpchDatabase(topts);
  WorkloadQuery q1 = MakeTpchQ1(db);

  TSensComputeOptions opts;
  opts.keep_tables = true;
  opts.prefer_path_algorithm = false;
  auto tsens = ComputeLocalSensitivity(q1.query, db, opts);
  ASSERT_TRUE(tsens.ok());
  auto sens = TupleSensitivities(*tsens, q1.query, db, q1.private_atom);
  ASSERT_TRUE(sens.ok());
  auto full = CountQuery(q1.query, db);
  ASSERT_TRUE(full.ok());

  const std::string pr = q1.query.atom(q1.private_atom).relation;
  for (uint64_t threshold : {0, 1, 5, 20, 60, 1000}) {
    double additive = full->ToDouble();
    for (Count c : *sens) {
      if (c > Count(threshold)) additive -= c.ToDouble();
    }
    Database truncated = db.Clone();
    auto removed =
        TruncateBySensitivity(truncated, pr, *sens, Count(threshold));
    ASSERT_TRUE(removed.ok());
    auto real = CountQuery(q1.query, truncated);
    ASSERT_TRUE(real.ok());
    EXPECT_DOUBLE_EQ(additive, real->ToDouble()) << "threshold " << threshold;
  }
}

// Same identity on a cyclic query (triangle) where tuples of the private
// relation interact through shared endpoints — each output still contains
// exactly one PR tuple, so additivity must hold.
TEST(TSensDpTest, AdditiveTruncatedCountsOnTriangles) {
  SocialOptions sopts;
  sopts.num_nodes = 40;
  sopts.num_circles = 60;
  sopts.target_directed_edges = 500;
  Database db = MakeSocialDatabase(sopts);
  WorkloadQuery tri = MakeFacebookTriangle(db);

  TSensComputeOptions opts;
  opts.keep_tables = true;
  opts.ghd = tri.ghd_ptr();
  auto tsens = ComputeLocalSensitivity(tri.query, db, opts);
  ASSERT_TRUE(tsens.ok());
  auto sens = TupleSensitivities(*tsens, tri.query, db, tri.private_atom);
  ASSERT_TRUE(sens.ok());
  auto full = CountQuery(tri.query, db, {}, tri.ghd_ptr());
  ASSERT_TRUE(full.ok());

  const std::string pr = tri.query.atom(tri.private_atom).relation;
  for (uint64_t threshold : {0, 1, 2, 4, 8}) {
    double additive = full->ToDouble();
    for (Count c : *sens) {
      if (c > Count(threshold)) additive -= c.ToDouble();
    }
    Database truncated = db.Clone();
    ASSERT_TRUE(
        TruncateBySensitivity(truncated, pr, *sens, Count(threshold)).ok());
    auto real = CountQuery(tri.query, truncated, {}, tri.ghd_ptr());
    ASSERT_TRUE(real.ok());
    EXPECT_DOUBLE_EQ(additive, real->ToDouble()) << "threshold " << threshold;
  }
}

TEST(TSensDpTest, HighBudgetGivesAccurateAnswers) {
  TpchOptions topts;
  topts.scale = 0.001;
  Database db = MakeTpchDatabase(topts);
  WorkloadQuery q1 = MakeTpchQ1(db);
  TSensDpOptions opts;
  opts.epsilon = 1000.0;  // essentially noiseless
  opts.ell = 2000;        // above the true max tuple sensitivity: no bias
  opts.seed = 7;
  auto run = RunTSensDp(q1.query, db, q1.private_atom, opts);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_GT(run->true_answer, 0.0);
  EXPECT_LT(run->error() / run->true_answer, 0.01);
  EXPECT_LE(run->learned_threshold, 2000u);
  EXPECT_GE(run->learned_threshold, 1u);
}

TEST(TSensDpTest, DeterministicGivenSeed) {
  TpchOptions topts;
  topts.scale = 0.0005;
  Database db = MakeTpchDatabase(topts);
  WorkloadQuery q1 = MakeTpchQ1(db);
  TSensDpOptions opts;
  opts.ell = q1.ell;
  opts.seed = 99;
  auto a = RunTSensDp(q1.query, db, q1.private_atom, opts);
  auto b = RunTSensDp(q1.query, db, q1.private_atom, opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->noisy_answer, b->noisy_answer);
  EXPECT_EQ(a->learned_threshold, b->learned_threshold);
}

TEST(TSensDpTest, RejectsBadParameters) {
  auto ex = MakeFigure3Example();
  TSensDpOptions opts;
  opts.epsilon = -1.0;
  EXPECT_FALSE(RunTSensDp(ex.query, ex.db, 0, opts).ok());
  opts.epsilon = 1.0;
  opts.ell = 0;
  EXPECT_FALSE(RunTSensDp(ex.query, ex.db, 0, opts).ok());
}

TEST(PrivSqlTest, HighBudgetOnQ1IsAccurate) {
  TpchOptions topts;
  topts.scale = 0.001;
  Database db = MakeTpchDatabase(topts);
  WorkloadQuery q1 = MakeTpchQ1(db);
  PrivSqlPolicy policy;
  policy.private_atom = q1.private_atom;  // Customer
  AttrId ck = db.attrs().Lookup("CK");
  AttrId ok = db.attrs().Lookup("OK");
  policy.rules.push_back({/*atom=*/3, {ck}, /*max_threshold=*/128});
  policy.rules.push_back({/*atom=*/4, {ok}, /*max_threshold=*/16});
  PrivSqlOptions opts;
  opts.epsilon = 1000.0;
  opts.seed = 5;
  auto run = RunPrivSql(q1.query, db, policy, opts);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_GT(run->true_answer, 0.0);
  EXPECT_LT(run->error() / run->true_answer, 0.05);
  EXPECT_GT(run->global_sensitivity, 0.0);
}

TEST(PrivSqlTest, NoRulesMeansNoBias) {
  SocialOptions sopts;
  sopts.num_nodes = 40;
  sopts.num_circles = 60;
  sopts.target_directed_edges = 500;
  Database db = MakeSocialDatabase(sopts);
  WorkloadQuery path = MakeFacebookPath(db);
  PrivSqlPolicy policy;
  policy.private_atom = path.private_atom;
  PrivSqlOptions opts;
  opts.seed = 11;
  auto run = RunPrivSql(path.query, db, policy, opts);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->bias(), 0.0);
  // Static sensitivity must dominate the exact local sensitivity.
  TSensComputeOptions topts2;
  auto tsens = ComputeLocalSensitivity(path.query, db, topts2);
  ASSERT_TRUE(tsens.ok());
  EXPECT_GE(run->global_sensitivity, tsens->local_sensitivity.ToDouble());
}

TEST(TSensDpTest, ErrorShrinksWithEpsilon) {
  // Statistical sanity: averaged over seeds, a 10x larger budget should
  // not give materially worse answers (it strictly dominates in
  // distribution; with 15 seeds we allow a small slack).
  TpchOptions topts;
  topts.scale = 0.002;
  Database db = MakeTpchDatabase(topts);
  WorkloadQuery q1 = MakeTpchQ1(db);
  auto mean_error = [&](double epsilon) {
    double total = 0.0;
    const int runs = 15;
    for (int r = 0; r < runs; ++r) {
      TSensDpOptions opts;
      opts.epsilon = epsilon;
      opts.ell = 500;  // above the max customer sensitivity at this scale
      opts.seed = static_cast<uint64_t>(r) + 71;
      auto run = RunTSensDp(q1.query, db, q1.private_atom, opts);
      EXPECT_TRUE(run.ok());
      total += run->error() / run->true_answer;
    }
    return total / runs;
  };
  double loose = mean_error(0.5);
  double tight = mean_error(5.0);
  EXPECT_LT(tight, loose * 1.1 + 0.01);
}

TEST(DpComparisonTest, TSensDpBeatsPrivSqlOnQ2) {
  // q2's PrivSQL policy truncates Partsupp by supplier frequency (a
  // constant-80-per-supplier distribution at full scale) with SVT noise
  // scaled by the policy sensitivity; TSensDP's sensitivity-1 SVT is far
  // more accurate. Compare median errors over repeated runs. The scale
  // must leave headroom |Q| >> ℓ or the Q̂ release drowns in noise (the
  // §7.3 failure regime, covered by the parameter-analysis bench).
  TpchOptions topts;
  topts.scale = 0.005;
  Database db = MakeTpchDatabase(topts);
  WorkloadQuery q2 = MakeTpchQ2(db);
  AttrId sk = db.attrs().Lookup("SK");
  AttrId pk = db.attrs().Lookup("PK");

  std::vector<double> tsens_err;
  std::vector<double> priv_err;
  for (uint64_t seed = 0; seed < 9; ++seed) {
    TSensDpOptions dopts;
    dopts.ell = 1024;  // above the ~600 lineitems/supplier max at this scale
    dopts.seed = seed;
    auto t = RunTSensDp(q2.query, db, q2.private_atom, dopts);
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    tsens_err.push_back(t->error() / t->true_answer);

    PrivSqlPolicy policy;
    policy.private_atom = q2.private_atom;
    policy.rules.push_back({/*atom=*/0, {sk}, /*max_threshold=*/256});
    policy.rules.push_back({/*atom=*/3, MakeAttributeSet({sk, pk}),
                            /*max_threshold=*/64});
    PrivSqlOptions popts;
    popts.seed = seed;
    auto p = RunPrivSql(q2.query, db, policy, popts);
    ASSERT_TRUE(p.ok()) << p.status().ToString();
    priv_err.push_back(p->error() / p->true_answer);
  }
  std::sort(tsens_err.begin(), tsens_err.end());
  std::sort(priv_err.begin(), priv_err.end());
  EXPECT_LT(tsens_err[4], priv_err[4]);  // medians
}

}  // namespace
}  // namespace lsens
