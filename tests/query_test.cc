#include <gtest/gtest.h>

#include <algorithm>

#include "query/conjunctive_query.h"
#include "query/ghd.h"
#include "query/join_tree.h"
#include "test_util.h"

namespace lsens {
namespace {

using testing::MakeFigure1Example;
using testing::MakeFigure3Example;

ConjunctiveQuery TriangleQuery(Database& db) {
  db.AddRelation("E0", {"A", "B"});
  db.AddRelation("E1", {"B", "C"});
  db.AddRelation("E2", {"C", "A"});
  ConjunctiveQuery q;
  q.AddAtom(db, "E0", {"A", "B"});
  q.AddAtom(db, "E1", {"B", "C"});
  q.AddAtom(db, "E2", {"C", "A"});
  return q;
}

TEST(PredicateTest, EvalAllOps) {
  auto make = [](Predicate::Op op, Value rhs) {
    Predicate p;
    p.var = 0;
    p.op = op;
    p.rhs = rhs;
    return p;
  };
  EXPECT_TRUE(make(Predicate::Op::kEq, 5).Eval(5));
  EXPECT_FALSE(make(Predicate::Op::kEq, 5).Eval(4));
  EXPECT_TRUE(make(Predicate::Op::kNe, 5).Eval(4));
  EXPECT_TRUE(make(Predicate::Op::kLt, 5).Eval(4));
  EXPECT_FALSE(make(Predicate::Op::kLt, 5).Eval(5));
  EXPECT_TRUE(make(Predicate::Op::kLe, 5).Eval(5));
  EXPECT_TRUE(make(Predicate::Op::kGt, 5).Eval(6));
  EXPECT_TRUE(make(Predicate::Op::kGe, 5).Eval(5));
}

TEST(PredicateTest, SatisfyingValueSatisfies) {
  for (auto op : {Predicate::Op::kEq, Predicate::Op::kNe, Predicate::Op::kLt,
                  Predicate::Op::kLe, Predicate::Op::kGt, Predicate::Op::kGe}) {
    for (Value rhs : {-3, 0, 7}) {
      Predicate p;
      p.var = 0;
      p.op = op;
      p.rhs = rhs;
      EXPECT_TRUE(p.Eval(p.SatisfyingValue()))
          << "op=" << static_cast<int>(op) << " rhs=" << rhs;
    }
  }
}

TEST(ConjunctiveQueryTest, VarSets) {
  auto ex = MakeFigure1Example();
  const auto& q = ex.query;
  AttrId a = ex.db.attrs().Lookup("A");
  AttrId b = ex.db.attrs().Lookup("B");
  AttrId c = ex.db.attrs().Lookup("C");
  AttrId d = ex.db.attrs().Lookup("D");
  EXPECT_EQ(q.AllVars().size(), 6u);
  EXPECT_EQ(q.SharedVars(), MakeAttributeSet({a, b}));
  EXPECT_EQ(q.SharedVarsOf(0), MakeAttributeSet({a, b}));
  EXPECT_EQ(q.ExclusiveVarsOf(0), (AttributeSet{c}));
  EXPECT_EQ(q.ExclusiveVarsOf(1), (AttributeSet{d}));
}

TEST(ConjunctiveQueryTest, ValidateCatchesProblems) {
  auto ex = MakeFigure1Example();
  EXPECT_TRUE(ex.query.Validate(ex.db).ok());

  ConjunctiveQuery missing;
  missing.AddAtom(ex.db, "NoSuch", {"A", "B"});
  EXPECT_EQ(missing.Validate(ex.db).code(), Status::Code::kNotFound);

  ConjunctiveQuery arity;
  arity.AddAtom(ex.db, "R3", {"A"});  // R3 has arity 2
  EXPECT_EQ(arity.Validate(ex.db).code(), Status::Code::kInvalidArgument);

  ConjunctiveQuery repeated;
  repeated.AddAtom(ex.db, "R3", {"A", "A"});
  EXPECT_EQ(repeated.Validate(ex.db).code(), Status::Code::kUnsupported);

  ConjunctiveQuery empty;
  EXPECT_FALSE(empty.Validate(ex.db).ok());
}

TEST(ConjunctiveQueryTest, ValidateForSensitivityRejectsSelfJoin) {
  auto ex = MakeFigure1Example();
  ConjunctiveQuery self_join;
  self_join.AddAtom(ex.db, "R3", {"A", "E"});
  self_join.AddAtom(ex.db, "R3", {"E", "F2"});
  EXPECT_TRUE(self_join.Validate(ex.db).ok());
  EXPECT_EQ(self_join.ValidateForSensitivity(ex.db).code(),
            Status::Code::kUnsupported);
}

TEST(ConjunctiveQueryTest, PredicateMustBindAtomVar) {
  auto ex = MakeFigure1Example();
  ConjunctiveQuery q;
  int atom = q.AddAtom(ex.db, "R3", {"A", "E"});
  Predicate p;
  p.var = ex.db.attrs().Lookup("B");  // not in R3's atom
  q.AddPredicate(atom, p);
  EXPECT_FALSE(q.Validate(ex.db).ok());
}

TEST(ConjunctiveQueryTest, ToStringRendersDatalog) {
  auto ex = MakeFigure3Example();
  EXPECT_EQ(ex.query.ToString(ex.db.attrs()),
            "Q :- R1(A,B), R2(B,C), R3(C,D), R4(D,E)");
}

TEST(GyoTest, Figure1IsAcyclicWithStarTree) {
  auto ex = MakeFigure1Example();
  EXPECT_TRUE(IsAcyclic(ex.query));
  auto forest = BuildJoinForestGYO(ex.query);
  ASSERT_TRUE(forest.ok());
  ASSERT_EQ(forest->trees.size(), 1u);
  const JoinTree& tree = forest->trees[0];
  // Join trees are not unique: Figure 2 roots a star at R1, while our
  // deterministic GYO produces the chain R4 -> R2 -> {R1, R3}. Any valid
  // join tree is acceptable; check the structural invariants instead of
  // one specific shape.
  EXPECT_EQ(tree.size(), 4u);
  EXPECT_TRUE(tree.ValidateAgainst(ex.query).ok());
  // Every ear's shared variables are covered by its parent.
  for (int atom : tree.members()) {
    int p = tree.Parent(atom);
    if (p == -1) continue;
    AttributeSet shared = ex.query.SharedVarsOf(atom);
    EXPECT_TRUE(IsSubset(Intersect(shared, ex.query.atom(p).VarSet()),
                         ex.query.atom(p).VarSet()));
    EXPECT_FALSE(
        Intersect(ex.query.atom(atom).VarSet(), ex.query.atom(p).VarSet())
            .empty());
  }
}

TEST(GyoTest, PathQueryYieldsChain) {
  auto ex = MakeFigure3Example();
  auto forest = BuildJoinForestGYO(ex.query);
  ASSERT_TRUE(forest.ok());
  ASSERT_EQ(forest->trees.size(), 1u);
  EXPECT_EQ(forest->trees[0].MaxDegree(), 2);
  auto analysis = AnalyzeJoinTree(ex.query, *forest);
  EXPECT_TRUE(analysis.path_query);
  EXPECT_TRUE(analysis.doubly_acyclic);
}

TEST(GyoTest, TriangleIsCyclic) {
  Database db;
  ConjunctiveQuery q = TriangleQuery(db);
  EXPECT_FALSE(IsAcyclic(q));
  EXPECT_EQ(BuildJoinForestGYO(q).status().code(), Status::Code::kUnsupported);
}

TEST(GyoTest, DisconnectedQueryYieldsForest) {
  Database db;
  db.AddRelation("R", {"A", "B"});
  db.AddRelation("S", {"B"});
  db.AddRelation("T", {"X", "Y"});
  ConjunctiveQuery q;
  q.AddAtom(db, "R", {"A", "B"});
  q.AddAtom(db, "S", {"B"});
  q.AddAtom(db, "T", {"X", "Y"});
  auto forest = BuildJoinForestGYO(q);
  ASSERT_TRUE(forest.ok());
  EXPECT_EQ(forest->trees.size(), 2u);
  EXPECT_NE(forest->TreeOf(0), forest->TreeOf(2));
  EXPECT_EQ(forest->TreeOf(0), forest->TreeOf(1));
}

TEST(JoinTreeTest, TraversalOrders) {
  auto ex = MakeFigure1Example();
  auto forest = BuildJoinForestGYO(ex.query);
  ASSERT_TRUE(forest.ok());
  const JoinTree& tree = forest->trees[0];
  std::vector<int> post = tree.PostOrder();
  std::vector<int> pre = tree.PreOrder();
  EXPECT_EQ(post.size(), 4u);
  EXPECT_EQ(post.back(), tree.root());
  EXPECT_EQ(pre.front(), tree.root());
  // Every child appears before its parent in post order.
  for (int atom : tree.members()) {
    int p = tree.Parent(atom);
    if (p == -1) continue;
    auto pos = [&](int x) {
      return std::find(post.begin(), post.end(), x) - post.begin();
    };
    EXPECT_LT(pos(atom), pos(p));
  }
}

TEST(JoinTreeTest, NeighborsExcludeSelf) {
  auto ex = MakeFigure1Example();
  auto forest = BuildJoinForestGYO(ex.query);
  const JoinTree& tree = forest->trees[0];
  EXPECT_TRUE(tree.Neighbors(tree.root()).empty());
  // For any node with siblings, Neighbors = parent's children minus self.
  for (int atom : tree.members()) {
    int p = tree.Parent(atom);
    if (p == -1) continue;
    std::vector<int> expected;
    for (int c : tree.Children(p)) {
      if (c != atom) expected.push_back(c);
    }
    EXPECT_EQ(tree.Neighbors(atom), expected);
  }
}

TEST(PathOrderTest, DetectsChain) {
  auto ex = MakeFigure3Example();
  std::vector<int> order = PathOrder(ex.query);
  ASSERT_EQ(order.size(), 4u);
  // The chain may be traversed from either end.
  EXPECT_TRUE((order == std::vector<int>{0, 1, 2, 3}) ||
              (order == std::vector<int>{3, 2, 1, 0}));
}

TEST(PathOrderTest, StarIsNotAPath) {
  auto ex = MakeFigure1Example();
  EXPECT_TRUE(PathOrder(ex.query).empty());
}

TEST(PathOrderTest, TwoAtomSingleLink) {
  Database db;
  db.AddRelation("R", {"A", "B"});
  db.AddRelation("S", {"B", "C"});
  ConjunctiveQuery q;
  q.AddAtom(db, "R", {"A", "B"});
  q.AddAtom(db, "S", {"B", "C"});
  EXPECT_EQ(PathOrder(q).size(), 2u);
}

TEST(PathOrderTest, MultiAttributeLinkRejected) {
  Database db;
  db.AddRelation("R", {"A", "B"});
  db.AddRelation("S", {"A", "B"});
  ConjunctiveQuery q;
  q.AddAtom(db, "R", {"A", "B"});
  q.AddAtom(db, "S", {"A", "B"});
  EXPECT_TRUE(PathOrder(q).empty());  // two-attribute link
}

TEST(GhdTest, ManualTriangleDecomposition) {
  Database db;
  ConjunctiveQuery q = TriangleQuery(db);
  auto ghd = BuildGhd(q, {{0, 1}, {2}});
  ASSERT_TRUE(ghd.ok());
  EXPECT_EQ(ghd->Width(), 2);
  EXPECT_EQ(ghd->bags.size(), 2u);
  EXPECT_EQ(ghd->forest.trees.size(), 1u);
}

TEST(GhdTest, RejectsNonPartition) {
  Database db;
  ConjunctiveQuery q = TriangleQuery(db);
  EXPECT_FALSE(BuildGhd(q, {{0, 1}}).ok());          // atom 2 missing
  EXPECT_FALSE(BuildGhd(q, {{0, 1}, {1, 2}}).ok());  // atom 1 twice
  EXPECT_FALSE(BuildGhd(q, {{0}, {1}, {2}}).ok());   // bags still cyclic
}

TEST(GhdTest, SearchFindsTriangleWidth2) {
  Database db;
  ConjunctiveQuery q = TriangleQuery(db);
  auto ghd = SearchGhd(q, /*max_width=*/3);
  ASSERT_TRUE(ghd.ok());
  EXPECT_EQ(ghd->Width(), 2);
}

TEST(GhdTest, SearchPrefersWidth1ForAcyclic) {
  auto ex = MakeFigure1Example();
  auto ghd = SearchGhd(ex.query, /*max_width=*/4);
  ASSERT_TRUE(ghd.ok());
  EXPECT_EQ(ghd->Width(), 1);
}

TEST(GhdTest, FourCycleDecomposition) {
  Database db;
  db.AddRelation("E0", {"A", "B"});
  db.AddRelation("E1", {"B", "C"});
  db.AddRelation("E2", {"C", "D"});
  db.AddRelation("E3", {"D", "A"});
  ConjunctiveQuery q;
  q.AddAtom(db, "E0", {"A", "B"});
  q.AddAtom(db, "E1", {"B", "C"});
  q.AddAtom(db, "E2", {"C", "D"});
  q.AddAtom(db, "E3", {"D", "A"});
  EXPECT_FALSE(IsAcyclic(q));
  // The paper's Figure 5 decomposition: {R1,R2} and {R3,R4}.
  auto ghd = BuildGhd(q, {{0, 1}, {2, 3}});
  ASSERT_TRUE(ghd.ok());
  EXPECT_EQ(ghd->Width(), 2);
  auto searched = SearchGhd(q, 2);
  ASSERT_TRUE(searched.ok());
  EXPECT_EQ(searched->Width(), 2);
}

TEST(GhdTest, TrivialGhdMirrorsForest) {
  auto ex = MakeFigure1Example();
  auto forest = BuildJoinForestGYO(ex.query);
  Ghd ghd = MakeTrivialGhd(ex.query, *forest);
  EXPECT_EQ(ghd.Width(), 1);
  EXPECT_EQ(ghd.bags.size(), 4u);
  EXPECT_EQ(BagOf(ghd, 2), 2);
}

TEST(AnalysisTest, StarRootJoinIsCyclicQuery) {
  // §5.2's hard example: Q :- R1(A,B,C), R2(A,B), R3(B,C), R4(C,A).
  // Acyclic, but the multiplicity-table join at R1 is a triangle, so the
  // query is not doubly acyclic.
  Database db;
  db.AddRelation("R1", {"A", "B", "C"});
  db.AddRelation("R2", {"A", "B"});
  db.AddRelation("R3", {"B", "C"});
  db.AddRelation("R4", {"C", "A"});
  ConjunctiveQuery q;
  q.AddAtom(db, "R1", {"A", "B", "C"});
  q.AddAtom(db, "R2", {"A", "B"});
  q.AddAtom(db, "R3", {"B", "C"});
  q.AddAtom(db, "R4", {"C", "A"});
  auto forest = BuildJoinForestGYO(q);
  ASSERT_TRUE(forest.ok());
  auto analysis = AnalyzeJoinTree(q, *forest);
  EXPECT_FALSE(analysis.doubly_acyclic);
  EXPECT_FALSE(analysis.path_query);
  EXPECT_EQ(analysis.max_degree, 3);
}

}  // namespace
}  // namespace lsens
