// Differential property suite for the vectorized join core: every join
// algorithm (flat-table hash, sort-merge, and the filtered-cross-product
// oracle) must produce identical normalized outputs on randomized inputs,
// the kAuto cost-based picker must make pinned choices on skewed/sorted
// inputs, and ExecContext must collect operator stats end to end.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/rng.h"
#include "exec/exec_context.h"
#include "exec/join.h"
#include "exec/row_sort.h"
#include "query/explain.h"
#include "sensitivity/tsens_engine.h"
#include "test_util.h"

namespace lsens {
namespace {

CountedRelation MakeRandom(Rng& rng, AttributeSet attrs, size_t max_rows,
                           uint64_t domain, bool spread_values = false) {
  CountedRelation r(std::move(attrs));
  const size_t rows = rng.NextBounded(max_rows + 1);
  std::vector<Value> row(r.arity());
  for (size_t i = 0; i < rows; ++i) {
    for (auto& v : row) {
      v = static_cast<Value>(rng.NextBounded(domain));
      // Exercise the full int64 range (negatives included) so the sort
      // machinery's order-preserving bit flip is covered, not just the
      // radix-friendly narrow domains.
      if (spread_values && rng.NextBounded(2) == 0) {
        v = v * -1'000'003 + static_cast<Value>(rng.NextBounded(7));
      }
    }
    r.AppendRow(row, Count(1 + rng.NextBounded(4)));
  }
  r.Normalize();
  return r;
}

// Reference implementation: filtered cross product by nested loops —
// every pair whose shared attributes agree, counts multiplied.
CountedRelation NestedLoopJoin(const CountedRelation& a,
                               const CountedRelation& b) {
  AttributeSet out_attrs = Union(a.attrs(), b.attrs());
  AttributeSet key = Intersect(a.attrs(), b.attrs());
  std::vector<int> a_key;
  std::vector<int> b_key;
  for (AttrId attr : key) {
    a_key.push_back(a.ColumnOf(attr));
    b_key.push_back(b.ColumnOf(attr));
  }
  CountedRelation out(out_attrs);
  std::vector<Value> row(out_attrs.size());
  for (size_t i = 0; i < a.NumRows(); ++i) {
    for (size_t j = 0; j < b.NumRows(); ++j) {
      bool match = true;
      for (size_t k = 0; k < key.size(); ++k) {
        match = match && a.Row(i)[static_cast<size_t>(a_key[k])] ==
                             b.Row(j)[static_cast<size_t>(b_key[k])];
      }
      if (!match) continue;
      for (size_t c = 0; c < out_attrs.size(); ++c) {
        int ca = a.ColumnOf(out_attrs[c]);
        row[c] = ca >= 0 ? a.Row(i)[static_cast<size_t>(ca)]
                         : b.Row(j)[static_cast<size_t>(
                               b.ColumnOf(out_attrs[c]))];
      }
      out.AppendRow(row, a.CountAt(i) * b.CountAt(j));
    }
  }
  out.Normalize();
  return out;
}

void ExpectSameRelation(const CountedRelation& x, const CountedRelation& y,
                        const char* label) {
  ASSERT_EQ(x.attrs(), y.attrs()) << label;
  ASSERT_EQ(x.NumRows(), y.NumRows()) << label;
  for (size_t i = 0; i < x.NumRows(); ++i) {
    ASSERT_EQ(CompareRows(x.Row(i), y.Row(i)), 0) << label << " row " << i;
    ASSERT_EQ(x.CountAt(i), y.CountAt(i)) << label << " count " << i;
  }
}

TEST(JoinDifferentialTest, AllAlgorithmsMatchNestedLoopOracle) {
  Rng rng(2024);
  // Attribute shapes: overlapping keys, full overlap, and disjoint
  // (empty-key cross product) pairs.
  const std::vector<std::pair<AttributeSet, AttributeSet>> shapes = {
      {{1, 2}, {2, 3}}, {{1, 2}, {1, 2}}, {{1}, {2}}, {{1, 2, 3}, {3, 4}},
      {{2}, {1, 2, 3}}};
  for (int trial = 0; trial < 120; ++trial) {
    const auto& [attrs_a, attrs_b] = shapes[trial % shapes.size()];
    const bool spread = trial % 3 == 0;
    CountedRelation a = MakeRandom(rng, attrs_a, 24, 5, spread);
    CountedRelation b = MakeRandom(rng, attrs_b, 24, 5, spread);
    CountedRelation oracle = NestedLoopJoin(a, b);
    CountedRelation hash = NaturalJoin(a, b, {JoinAlgorithm::kHash});
    CountedRelation merge = NaturalJoin(a, b, {JoinAlgorithm::kSortMerge});
    CountedRelation automatic = NaturalJoin(a, b, {JoinAlgorithm::kAuto});
    ExpectSameRelation(hash, oracle, "hash vs nested-loop");
    ExpectSameRelation(merge, oracle, "sort-merge vs nested-loop");
    ExpectSameRelation(automatic, oracle, "auto vs nested-loop");
  }
}

TEST(JoinDifferentialTest, DefaultedSideMatchesManualExpansion) {
  Rng rng(77);
  for (int trial = 0; trial < 60; ++trial) {
    CountedRelation a = MakeRandom(rng, {1, 2}, 20, 4);
    CountedRelation b = MakeRandom(rng, {2}, 6, 4);
    b.set_default_count(Count(1 + rng.NextBounded(5)));

    CountedRelation joined = NaturalJoin(a, b);
    // Manual expansion: every a-row times its match count or the default.
    CountedRelation expected(a.attrs());
    for (size_t i = 0; i < a.NumRows(); ++i) {
      Value key[] = {a.Row(i)[1]};
      Count c = a.CountAt(i) * b.Lookup(key);
      if (!c.IsZero()) expected.AppendRow(a.Row(i), c);
    }
    expected.Normalize();
    ExpectSameRelation(joined, expected, "defaulted join");
  }
}

TEST(JoinDifferentialTest, EmptyKeyAndEmptyInputEdgeCases) {
  // Empty inputs under every algorithm, with and without a shared key.
  for (JoinAlgorithm algo :
       {JoinAlgorithm::kAuto, JoinAlgorithm::kHash, JoinAlgorithm::kSortMerge}) {
    CountedRelation empty({1, 2});
    CountedRelation one({2, 3});
    one.AppendRow({5, 6}, Count(2));
    one.Normalize();
    EXPECT_EQ(NaturalJoin(empty, one, {algo}).NumRows(), 0u);
    EXPECT_EQ(NaturalJoin(one, empty, {algo}).NumRows(), 0u);

    CountedRelation disjoint({9});
    disjoint.AppendRow({1}, Count(3));
    disjoint.Normalize();
    CountedRelation cross = NaturalJoin(one, disjoint, {algo});
    ASSERT_EQ(cross.NumRows(), 1u);
    EXPECT_EQ(cross.CountAt(0), Count(6));

    // Unit is the neutral element regardless of algorithm.
    CountedRelation u = NaturalJoin(one, CountedRelation::Unit(), {algo});
    ExpectSameRelation(u, one, "unit join");
  }
}

// --- Cost-based picker regressions ---------------------------------------

CountedRelation MakeSkewed(Rng& rng, AttributeSet attrs, size_t rows,
                           size_t hot_col, Value hot_key, uint64_t domain) {
  CountedRelation r(std::move(attrs));
  std::vector<Value> row(r.arity());
  for (size_t i = 0; i < rows; ++i) {
    // 90% of rows share the hot join key: the join output explodes.
    for (auto& v : row) v = static_cast<Value>(rng.NextBounded(domain));
    if (rng.NextBounded(10) < 9) row[hot_col] = hot_key;
    r.AppendRow(row, Count::One());
  }
  r.Normalize();
  return r;
}

TEST(JoinPickerTest, PrefersSortMergeWhenBothSidesKeySorted) {
  // Key {1} is the leading column of both normalized relations, so both
  // sides are already ordered on it and the merge needs no sort.
  Rng rng(5);
  CountedRelation a = MakeRandom(rng, {1, 2}, 2000, 50);
  CountedRelation b = MakeRandom(rng, {1, 3}, 2000, 50);
  ASSERT_GT(a.NumRows(), 500u);
  EXPECT_EQ(ChooseJoinAlgorithm(a, b), JoinAlgorithm::kSortMerge);
}

TEST(JoinPickerTest, PrefersHashWhenSortWouldDominate) {
  // Key {2} is a trailing column of `a` (unsorted on it), and the join is
  // selective: sorting would dominate, hashing wins.
  Rng rng(6);
  CountedRelation a = MakeRandom(rng, {1, 2}, 2000, 2000);
  CountedRelation b = MakeRandom(rng, {2, 3}, 2000, 2000);
  ASSERT_GT(a.NumRows(), 500u);
  EXPECT_EQ(ChooseJoinAlgorithm(a, b), JoinAlgorithm::kHash);
}

TEST(JoinPickerTest, SkewFlipsThePickToSortMerge) {
  // Same shapes as above, but 90% of rows share one join key: the output
  // (consulted through EstimateJoinRows) dwarfs the inputs, emission
  // dominates both kernels, and the contiguous-run merge emission wins
  // despite the sort.
  Rng rng(7);
  // The join key is attr 2: column 1 of `a`, column 0 of `b`.
  CountedRelation a = MakeSkewed(rng, {1, 2}, 1500, 1, 42, 3000);
  CountedRelation b = MakeSkewed(rng, {2, 3}, 1500, 0, 42, 3000);
  ASSERT_GT(EstimateJoinRows(a, b), 100 * (a.NumRows() + b.NumRows()));
  EXPECT_EQ(ChooseJoinAlgorithm(a, b), JoinAlgorithm::kSortMerge);
  // And kAuto must agree with the exposed picker: pinned via the stats of
  // the kernel that actually ran.
  ExecContext ctx;
  JoinOptions opts;
  opts.ctx = &ctx;
  NaturalJoin(a, b, opts);
  EXPECT_NE(ctx.FindStats("join.sort_merge"), nullptr);
  EXPECT_EQ(ctx.FindStats("join.hash"), nullptr);
}

// --- ExecContext stats ----------------------------------------------------

TEST(ExecContextTest, TSensOverGhdReportsOperatorStats) {
  auto ex = testing::MakeFigure1Example();
  auto forest = BuildJoinForestGYO(ex.query);
  ASSERT_TRUE(forest.ok());
  Ghd ghd = MakeTrivialGhd(ex.query, *forest);

  ExecContext ctx;
  TSensOptions options;
  options.join.ctx = &ctx;
  auto result = TSensOverGhd(ex.query, ghd, ex.db, options);
  ASSERT_TRUE(result.ok());

  EXPECT_TRUE(ctx.has_stats());
  const OperatorStats* fold = ctx.FindStats("fold_join");
  ASSERT_NE(fold, nullptr);
  EXPECT_GT(fold->calls, 0u);
  EXPECT_NE(ctx.FindStats("group_by_sum"), nullptr);

  std::string report = RenderExecStats(ctx);
  EXPECT_NE(report.find("fold_join"), std::string::npos);
  EXPECT_NE(report.find("group_by_sum"), std::string::npos);

  ctx.ResetStats();
  EXPECT_FALSE(ctx.has_stats());
  EXPECT_NE(RenderExecStats(ctx).find("none collected"), std::string::npos);
}

TEST(ExecContextTest, StatsAccumulateAcrossCalls) {
  Rng rng(11);
  CountedRelation a = MakeRandom(rng, {1, 2}, 50, 6);
  CountedRelation b = MakeRandom(rng, {2, 3}, 50, 6);
  ExecContext ctx;
  JoinOptions opts{JoinAlgorithm::kHash, &ctx};
  NaturalJoin(a, b, opts);
  const OperatorStats* first = ctx.FindStats("join.hash");
  ASSERT_NE(first, nullptr);
  const uint64_t calls_after_one = first->calls;
  NaturalJoin(a, b, opts);
  EXPECT_EQ(ctx.FindStats("join.hash")->calls, calls_after_one + 1);

  ctx.collect_stats = false;
  NaturalJoin(a, b, opts);
  EXPECT_EQ(ctx.FindStats("join.hash")->calls, calls_after_one + 1);
}

// --- Shared sort machinery ------------------------------------------------

TEST(RowSortTest, SortRowsByMatchesReferenceOnRandomInputs) {
  Rng rng(13);
  ExecContext ctx;
  for (int trial = 0; trial < 80; ++trial) {
    // Alternate narrow domains (radix path) and spread values (introsort
    // path, negatives included); arities 1-4 cover the inline-key widths.
    const size_t arity = 1 + trial % 4;
    AttributeSet attrs;
    for (size_t i = 0; i < arity; ++i) attrs.push_back(static_cast<AttrId>(i + 1));
    CountedRelation r(attrs);
    const size_t rows = 1 + rng.NextBounded(600);
    std::vector<Value> row(arity);
    for (size_t i = 0; i < rows; ++i) {
      for (auto& v : row) {
        v = static_cast<Value>(rng.NextBounded(trial % 2 ? 4 : 1000));
        if (trial % 5 == 0) v -= 500;
      }
      r.AppendRow(row, Count::One());
    }
    std::vector<int> cols;
    for (size_t c = 0; c < arity; ++c) {
      if (rng.NextBounded(2) == 0) cols.push_back(static_cast<int>(c));
    }
    if (cols.empty()) cols.push_back(static_cast<int>(arity - 1));

    std::vector<uint32_t> perm;
    SortRowsBy(r, cols, perm, ctx);

    std::vector<uint32_t> expected(r.NumRows());
    std::iota(expected.begin(), expected.end(), 0);
    std::stable_sort(expected.begin(), expected.end(),
                     [&](uint32_t x, uint32_t y) {
                       return CompareRowsAt(r.Row(x), r.Row(y), cols) < 0;
                     });
    ASSERT_EQ(perm, expected) << "trial " << trial;
  }
}

TEST(RowSortTest, DetectsPresortedInput) {
  CountedRelation r({1, 2});
  r.AppendRow({1, 9}, Count::One());
  r.AppendRow({2, 3}, Count::One());
  r.AppendRow({2, 5}, Count::One());
  r.Normalize();
  std::vector<int> prefix{0};
  std::vector<int> trailing{1};
  EXPECT_TRUE(RowsSortedBy(r, prefix));
  EXPECT_FALSE(RowsSortedBy(r, trailing));
}

}  // namespace
}  // namespace lsens
