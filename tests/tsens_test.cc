#include <gtest/gtest.h>

#include <algorithm>

#include "query/eval.h"
#include "query/ghd.h"
#include "query/join_tree.h"
#include "sensitivity/naive.h"
#include "sensitivity/tsens.h"
#include "sensitivity/tsens_engine.h"
#include "sensitivity/tsens_path.h"
#include "test_util.h"

namespace lsens {
namespace {

using testing::MakeFigure1Example;
using testing::MakeFigure3Example;

TEST(TSensTest, Figure1LocalSensitivityIsFour) {
  auto ex = MakeFigure1Example();
  auto result = ComputeLocalSensitivity(ex.query, ex.db);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->local_sensitivity, Count(4));
  // Example 2.1: the most sensitive tuple is (a2, b2, c1) in R1 —
  // bound on A and B, free on C.
  const AtomSensitivity* best = result->MostSensitive();
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->relation, "R1");
  ASSERT_EQ(best->argmax.size(), 2u);
  EXPECT_EQ(best->argmax[0], ex.db.dict().Lookup("a2"));
  EXPECT_EQ(best->argmax[1], ex.db.dict().Lookup("b2"));
  ASSERT_EQ(best->free_vars.size(), 1u);
  EXPECT_EQ(best->free_vars[0], ex.db.attrs().Lookup("C"));
}

TEST(TSensTest, Figure1PerRelationMaxima) {
  auto ex = MakeFigure1Example();
  TSensComputeOptions opts;
  opts.keep_tables = true;
  auto result = ComputeLocalSensitivity(ex.query, ex.db, opts);
  ASSERT_TRUE(result.ok());
  // Example 2.1 notes δ((a1,b1,c1) in R1) = 1 (downward). The other two R1
  // rows have no matching R2 pair, so removing/re-adding them changes
  // nothing.
  auto sens = TupleSensitivities(*result, ex.query, ex.db, 0);
  ASSERT_TRUE(sens.ok());
  EXPECT_EQ((*sens)[0], Count(1));       // (a1,b1,c1)
  EXPECT_EQ((*sens)[1], Count::Zero());  // (a1,b2,c1): no R2(a1,b2,·)
  EXPECT_EQ((*sens)[2], Count::Zero());  // (a2,b1,c1): no R2(a2,b1,·)
}

TEST(TSensTest, Figure1DescribeMostSensitive) {
  auto ex = MakeFigure1Example();
  auto result = ComputeLocalSensitivity(ex.query, ex.db);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->DescribeMostSensitive(ex.db.attrs(), &ex.db.dict()),
            "R1(A=a2, B=b2, C=*) with sensitivity 4");
}

TEST(TSensTest, Figure3PathSensitivity) {
  auto ex = MakeFigure3Example();
  auto result = ComputeLocalSensitivity(ex.query, ex.db);
  ASSERT_TRUE(result.ok());
  // Example 4.1: removing R2(b1,c1) removes all 4 outputs; LS = 4.
  EXPECT_EQ(result->local_sensitivity, Count(4));
  const AtomSensitivity* best = result->MostSensitive();
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->relation, "R2");
  ASSERT_EQ(best->argmax.size(), 2u);
  EXPECT_EQ(best->argmax[0], ex.db.dict().Lookup("b1"));
  EXPECT_EQ(best->argmax[1], ex.db.dict().Lookup("c1"));
}

TEST(TSensTest, Figure3PathAndEngineAgree) {
  auto ex = MakeFigure3Example();
  std::vector<int> order = PathOrder(ex.query);
  ASSERT_FALSE(order.empty());
  auto path = TSensPath(ex.query, order, ex.db);
  ASSERT_TRUE(path.ok());

  auto forest = BuildJoinForestGYO(ex.query);
  auto engine = TSensOverGhd(ex.query, MakeTrivialGhd(ex.query, *forest),
                             ex.db);
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ(path->local_sensitivity, engine->local_sensitivity);
  for (int i = 0; i < ex.query.num_atoms(); ++i) {
    EXPECT_EQ(path->atoms[i].max_sensitivity,
              engine->atoms[i].max_sensitivity)
        << "atom " << i;
  }
}

TEST(TSensTest, Figure3PerAtomSensitivities) {
  auto ex = MakeFigure3Example();
  auto result = ComputeLocalSensitivity(ex.query, ex.db);
  ASSERT_TRUE(result.ok());
  // From Section 4.1/4.2 reasoning: δmax per relation = 2, 4, 2, 2.
  EXPECT_EQ(result->atoms[0].max_sensitivity, Count(2));
  EXPECT_EQ(result->atoms[1].max_sensitivity, Count(4));
  EXPECT_EQ(result->atoms[2].max_sensitivity, Count(2));
  EXPECT_EQ(result->atoms[3].max_sensitivity, Count(2));
}

TEST(TSensTest, SingleRelationQueryHasSensitivityOne) {
  // "The problem is trivial when there is only one relation: LS = 1."
  Database db;
  auto* r = db.AddRelation("R", {"A", "B"});
  r->AppendRow({1, 2});
  r->AppendRow({3, 4});
  ConjunctiveQuery q;
  q.AddAtom(db, "R", {"A", "B"});
  auto result = ComputeLocalSensitivity(q, db);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->local_sensitivity, Count::One());
}

TEST(TSensTest, EmptyOtherRelationZeroesSensitivityOfJoinPartners) {
  auto ex = MakeFigure3Example();
  ex.db.Find("R4")->Clear();
  auto result = ComputeLocalSensitivity(ex.query, ex.db);
  ASSERT_TRUE(result.ok());
  // Nothing can join through R4 except a new R4 tuple itself: paths into
  // R4 still exist (via d1/d2), so LS comes from inserting into R4.
  EXPECT_EQ(result->local_sensitivity, Count(2));
  EXPECT_EQ(result->MostSensitive()->relation, "R4");
}

TEST(TSensTest, DisconnectedComponentsScaleSensitivity) {
  Database db;
  auto* r = db.AddRelation("R", {"A"});
  auto* t = db.AddRelation("T", {"X"});
  r->AppendRow({1});
  r->AppendRow({2});
  t->AppendRow({7});
  t->AppendRow({8});
  t->AppendRow({9});
  ConjunctiveQuery q;
  q.AddAtom(db, "R", {"A"});
  q.AddAtom(db, "T", {"X"});
  auto result = ComputeLocalSensitivity(q, db);
  ASSERT_TRUE(result.ok());
  // Adding one tuple to R creates |T| = 3 new outputs.
  EXPECT_EQ(result->local_sensitivity, Count(3));
  EXPECT_EQ(result->MostSensitive()->relation, "R");
}

TEST(TSensTest, SelectionPredicatesLowerSensitivity) {
  auto ex = MakeFigure3Example();
  // Restrict R3 to C = c1 rows... both R3 rows have C=c1, so restrict D:
  // keep only (c1, d1).
  Predicate p;
  p.var = ex.db.attrs().Lookup("D");
  p.op = Predicate::Op::kEq;
  p.rhs = ex.db.dict().Lookup("d1");
  ex.query.AddPredicate(2, p);
  auto result = ComputeLocalSensitivity(ex.query, ex.db);
  ASSERT_TRUE(result.ok());
  // Join output halves; R2(b1,c1) now yields 2*1 = 2.
  EXPECT_EQ(result->local_sensitivity, Count(2));
}

TEST(TSensTest, PredicateOnInsertCandidateFiltersMultiplicityTable) {
  auto ex = MakeFigure3Example();
  // Only allow R2 tuples with B = b2 — the high-sensitivity candidate
  // (b1, c1) is excluded, so R2's best drops to inserting (b2, c1): 0
  // incoming paths... b2 has no incoming paths from R1? R1 has (a1,b1),
  // (a2,b1) only, so B=b2 yields no joins: R2's max sensitivity is 0.
  Predicate p;
  p.var = ex.db.attrs().Lookup("B");
  p.op = Predicate::Op::kEq;
  p.rhs = ex.db.dict().Lookup("b2");
  ex.query.AddPredicate(1, p);
  auto result = ComputeLocalSensitivity(ex.query, ex.db);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->atoms[1].max_sensitivity, Count::Zero());
  // The query output is now empty, and every other relation's sensitivity
  // is 0 too (no surviving R2 rows to join through).
  EXPECT_EQ(result->local_sensitivity, Count::Zero());
}

TEST(TSensTest, SkipAtomsExcludesFromArgmax) {
  auto ex = MakeFigure3Example();
  TSensComputeOptions opts;
  opts.skip_atoms = {1};  // skip R2, whose max is 4
  auto result = ComputeLocalSensitivity(ex.query, ex.db, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->atoms[1].skipped);
  EXPECT_EQ(result->local_sensitivity, Count(2));
}

TEST(TSensTest, MaterializeMostSensitiveTuple) {
  auto ex = MakeFigure1Example();
  auto result = ComputeLocalSensitivity(ex.query, ex.db);
  ASSERT_TRUE(result.ok());
  auto tuple = MaterializeMostSensitiveTuple(*result, ex.query);
  ASSERT_TRUE(tuple.ok());
  EXPECT_EQ(tuple->first, 0);  // R1
  ASSERT_EQ(tuple->second.size(), 3u);
  EXPECT_EQ(tuple->second[0], ex.db.dict().Lookup("a2"));
  EXPECT_EQ(tuple->second[1], ex.db.dict().Lookup("b2"));
  // Inserting the materialized tuple changes |Q| by exactly LS.
  auto delta = NaiveTupleSensitivity(ex.query, ex.db, tuple->first,
                                     tuple->second);
  ASSERT_TRUE(delta.ok());
  EXPECT_EQ(*delta, result->local_sensitivity);
}

TEST(TSensTest, RejectsSelfJoins) {
  Database db;
  db.AddRelation("E", {"A", "B"});
  ConjunctiveQuery q;
  q.AddAtom(db, "E", {"A", "B"});
  q.AddAtom(db, "E", {"B", "C"});
  auto result = ComputeLocalSensitivity(q, db);
  EXPECT_EQ(result.status().code(), Status::Code::kUnsupported);
}

TEST(TSensTest, TriangleQueryViaManualGhd) {
  Database db;
  auto* e0 = db.AddRelation("E0", {"A", "B"});
  auto* e1 = db.AddRelation("E1", {"B", "C"});
  auto* e2 = db.AddRelation("E2", {"C", "A"});
  // Triangles (1,2,3) and (1,2,4); edge (1,2) participates in both.
  e0->AppendRow({1, 2});
  e1->AppendRow({2, 3});
  e1->AppendRow({2, 4});
  e2->AppendRow({3, 1});
  e2->AppendRow({4, 1});
  ConjunctiveQuery q;
  q.AddAtom(db, "E0", {"A", "B"});
  q.AddAtom(db, "E1", {"B", "C"});
  q.AddAtom(db, "E2", {"C", "A"});
  auto ghd = BuildGhd(q, {{0, 1}, {2}});
  ASSERT_TRUE(ghd.ok());
  TSensComputeOptions opts;
  opts.ghd = &*ghd;
  auto result = ComputeLocalSensitivity(q, db, opts);
  ASSERT_TRUE(result.ok());
  // Removing edge (1,2) from E0 kills both triangles.
  EXPECT_EQ(result->local_sensitivity, Count(2));
  EXPECT_EQ(result->MostSensitive()->relation, "E0");
  // Against the oracle.
  NaiveResult naive = *NaiveLocalSensitivity(q, db, {});
  EXPECT_EQ(naive.local_sensitivity, result->local_sensitivity);
}

TEST(TSensTest, StarQueryWithCyclicMultiplicityJoin) {
  // §5.2's hard acyclic example: Q :- R1(A,B,C), R2(A,B), R3(B,C), R4(C,A).
  // The multiplicity table of R1 is a triangle join of the three botjoins.
  Database db;
  auto* r1 = db.AddRelation("R1", {"A", "B", "C"});
  auto* r2 = db.AddRelation("R2", {"A", "B"});
  auto* r3 = db.AddRelation("R3", {"B", "C"});
  auto* r4 = db.AddRelation("R4", {"C", "A"});
  r1->AppendRow({1, 2, 3});
  r2->AppendRow({1, 2});
  r2->AppendRow({1, 2});  // duplicate: multiplicity 2
  r3->AppendRow({2, 3});
  r4->AppendRow({3, 1});
  ConjunctiveQuery q;
  q.AddAtom(db, "R1", {"A", "B", "C"});
  q.AddAtom(db, "R2", {"A", "B"});
  q.AddAtom(db, "R3", {"B", "C"});
  q.AddAtom(db, "R4", {"C", "A"});
  auto result = ComputeLocalSensitivity(q, db);
  ASSERT_TRUE(result.ok());
  // Inserting another copy of (1,2,3) into R1 joins 2*1*1 = 2 ways.
  EXPECT_EQ(result->local_sensitivity, Count(2));
  NaiveResult naive = *NaiveLocalSensitivity(q, db, {});
  EXPECT_EQ(naive.local_sensitivity, result->local_sensitivity);
}

TEST(TSensTest, TopKProducesUpperBound) {
  auto ex = MakeFigure3Example();
  TSensComputeOptions exact_opts;
  auto exact = ComputeLocalSensitivity(ex.query, ex.db, exact_opts);
  ASSERT_TRUE(exact.ok());
  for (size_t k = 1; k <= 4; ++k) {
    TSensComputeOptions opts;
    opts.top_k = k;
    auto approx = ComputeLocalSensitivity(ex.query, ex.db, opts);
    ASSERT_TRUE(approx.ok());
    EXPECT_GE(approx->local_sensitivity, exact->local_sensitivity)
        << "k=" << k;
    for (int i = 0; i < ex.query.num_atoms(); ++i) {
      EXPECT_GE(approx->atoms[i].max_sensitivity,
                exact->atoms[i].max_sensitivity)
          << "k=" << k << " atom=" << i;
    }
  }
}

TEST(TSensTest, KeepTablesMatchesNaivePerTuple) {
  auto ex = MakeFigure1Example();
  TSensComputeOptions opts;
  opts.keep_tables = true;
  auto result = ComputeLocalSensitivity(ex.query, ex.db, opts);
  ASSERT_TRUE(result.ok());
  for (int atom = 0; atom < ex.query.num_atoms(); ++atom) {
    auto sens = TupleSensitivities(*result, ex.query, ex.db, atom);
    ASSERT_TRUE(sens.ok());
    // Snapshot rows first: NaiveTupleSensitivity restores contents but may
    // permute row order, which would desynchronize row indices.
    const Relation* rel = ex.db.Find(ex.query.atom(atom).relation);
    std::vector<std::vector<Value>> rows;
    for (size_t r = 0; r < rel->NumRows(); ++r) {
      rows.push_back(rel->Row(r));
    }
    for (size_t row = 0; row < rows.size(); ++row) {
      auto naive = NaiveTupleSensitivity(ex.query, ex.db, atom, rows[row]);
      ASSERT_TRUE(naive.ok());
      EXPECT_EQ((*sens)[row], *naive)
          << "atom " << atom << " row " << row;
    }
  }
}

TEST(DownwardSensitivityTest, Figure1DeletionOnlyView) {
  auto ex = MakeFigure1Example();
  auto down = ComputeDownwardLocalSensitivity(ex.query, ex.db);
  ASSERT_TRUE(down.ok()) << down.status().ToString();
  // The global LS (4) comes from an *insertion*; the best deletion is
  // removing R1(a1,b1,c1) (or any tuple on the single join path): δ⁻ = 1.
  EXPECT_EQ(down->local_sensitivity, Count(1));
  auto full = ComputeLocalSensitivity(ex.query, ex.db);
  EXPECT_LE(down->local_sensitivity, full->local_sensitivity);
}

TEST(DownwardSensitivityTest, MatchesDeletionOracleOnRandomInstances) {
  Rng rng(90210);
  testing::RandomQuerySpec spec;
  spec.max_atoms = 4;
  spec.max_rows = 6;
  for (int trial = 0; trial < 10; ++trial) {
    auto ex = testing::MakeRandomAcyclicInstance(rng, spec);
    auto down = ComputeDownwardLocalSensitivity(ex.query, ex.db);
    ASSERT_TRUE(down.ok());

    // Deletion-only oracle: re-evaluate after removing one copy of each
    // distinct existing tuple.
    auto base = CountQuery(ex.query, ex.db);
    ASSERT_TRUE(base.ok());
    Count best = Count::Zero();
    for (int i = 0; i < ex.query.num_atoms(); ++i) {
      Relation* rel = ex.db.Find(ex.query.atom(i).relation);
      std::vector<std::vector<Value>> rows;
      for (size_t r = 0; r < rel->NumRows(); ++r) {
        rows.push_back(rel->Row(r));
      }
      for (size_t r = 0; r < rows.size(); ++r) {
        // Remove one copy (first occurrence), evaluate, restore.
        size_t pos = SIZE_MAX;
        for (size_t s = 0; s < rel->NumRows(); ++s) {
          if (CompareRows(rel->Row(s), rows[r]) == 0) {
            pos = s;
            break;
          }
        }
        rel->SwapRemoveRow(pos);
        auto removed = CountQuery(ex.query, ex.db);
        rel->AppendRow(rows[r]);
        ASSERT_TRUE(removed.ok());
        best = std::max(best, base->SaturatingSub(*removed));
      }
    }
    EXPECT_EQ(down->local_sensitivity, best)
        << ex.query.ToString(ex.db.attrs());
  }
}

TEST(DownwardSensitivityTest, RejectsTopK) {
  auto ex = MakeFigure1Example();
  TSensComputeOptions opts;
  opts.top_k = 2;
  EXPECT_EQ(ComputeDownwardLocalSensitivity(ex.query, ex.db, opts)
                .status()
                .code(),
            Status::Code::kUnsupported);
}

TEST(NaiveTest, Figure1MatchesPaper) {
  auto ex = MakeFigure1Example();
  auto result = NaiveLocalSensitivity(ex.query, ex.db, {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->local_sensitivity, Count(4));
  EXPECT_EQ(result->argmax_atom, 0);
  EXPECT_TRUE(result->argmax_is_insertion);
}

TEST(NaiveTest, TupleSensitivityUpAndDown) {
  auto ex = MakeFigure1Example();
  Value a1 = ex.db.dict().Lookup("a1");
  Value b1 = ex.db.dict().Lookup("b1");
  Value c1 = ex.db.dict().Lookup("c1");
  std::vector<Value> existing{a1, b1, c1};
  auto delta = NaiveTupleSensitivity(ex.query, ex.db, 0, existing);
  ASSERT_TRUE(delta.ok());
  EXPECT_EQ(*delta, Count(1));
}

}  // namespace
}  // namespace lsens
