#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "storage/attribute_set.h"
#include "storage/catalog.h"
#include "storage/database.h"
#include "storage/dictionary.h"
#include "storage/relation.h"
#include "storage/value.h"

namespace lsens {
namespace {

TEST(AttributeSetTest, MakeSortsAndDedups) {
  EXPECT_EQ(MakeAttributeSet({3, 1, 2, 1, 3}), (AttributeSet{1, 2, 3}));
  EXPECT_TRUE(IsValidAttributeSet({1, 2, 3}));
  EXPECT_FALSE(IsValidAttributeSet({1, 1, 2}));
  EXPECT_FALSE(IsValidAttributeSet({2, 1}));
}

TEST(AttributeSetTest, SetAlgebra) {
  AttributeSet a{1, 3, 5};
  AttributeSet b{3, 4, 5};
  EXPECT_EQ(Union(a, b), (AttributeSet{1, 3, 4, 5}));
  EXPECT_EQ(Intersect(a, b), (AttributeSet{3, 5}));
  EXPECT_EQ(Difference(a, b), (AttributeSet{1}));
  EXPECT_TRUE(Contains(a, 3));
  EXPECT_FALSE(Contains(a, 4));
  EXPECT_TRUE(IsSubset({3, 5}, a));
  EXPECT_FALSE(IsSubset({3, 4}, a));
  EXPECT_TRUE(Intersects(a, b));
  EXPECT_FALSE(Intersects({1, 2}, {3, 4}));
  EXPECT_TRUE(IsSubset({}, a));
  EXPECT_FALSE(Intersects({}, a));
}

TEST(CatalogTest, InternIsIdempotent) {
  AttributeCatalog cat;
  AttrId a = cat.Intern("NK");
  AttrId b = cat.Intern("CK");
  EXPECT_NE(a, b);
  EXPECT_EQ(cat.Intern("NK"), a);
  EXPECT_EQ(cat.Lookup("NK"), a);
  EXPECT_EQ(cat.Lookup("missing"), kInvalidAttr);
  EXPECT_EQ(cat.Name(a), "NK");
  EXPECT_EQ(cat.size(), 2u);
}

TEST(DictionaryTest, RoundTrips) {
  Dictionary d;
  Value a1 = d.Intern("a1");
  Value b2 = d.Intern("b2");
  EXPECT_NE(a1, b2);
  EXPECT_EQ(d.Intern("a1"), a1);
  EXPECT_EQ(d.Lookup("a1"), a1);
  EXPECT_EQ(d.Lookup("zz"), -1);
  EXPECT_EQ(d.String(b2), "b2");
  EXPECT_TRUE(d.ContainsValue(a1));
  EXPECT_FALSE(d.ContainsValue(999));
}

TEST(DictionaryTest, HeterogeneousLookupUsesViewsDirectly) {
  // Intern/Lookup take string_views that are not null-terminated and may
  // be slices of a larger buffer; the map probes with the view itself
  // (transparent hash/eq), so the slice's bounds must be respected
  // exactly — no C-string assumptions, no temporary std::string.
  Dictionary d;
  const std::string buffer = "alphabetagamma";
  const std::string_view alpha = std::string_view(buffer).substr(0, 5);
  const std::string_view beta = std::string_view(buffer).substr(5, 4);
  Value va = d.Intern(alpha);
  Value vb = d.Intern(beta);
  EXPECT_NE(va, vb);
  EXPECT_EQ(d.Lookup(std::string_view(buffer).substr(0, 5)), va);
  EXPECT_EQ(d.Lookup("beta"), vb);
  EXPECT_EQ(d.Lookup(std::string_view(buffer)), -1);
  EXPECT_EQ(d.String(va), "alpha");
  // Embedded NULs are part of the key, not terminators.
  const std::string_view with_nul("a\0b", 3);
  Value vn = d.Intern(with_nul);
  EXPECT_EQ(d.Lookup(with_nul), vn);
  EXPECT_EQ(d.Lookup(std::string_view("a", 1)), -1);
  EXPECT_EQ(d.String(vn), std::string("a\0b", 3));
}

TEST(DictionaryTest, CodesNeverCollideWithOrdinaryIntegers) {
  Dictionary d;
  Value code = d.Intern("first");
  EXPECT_GE(code, Dictionary::kBase);
  // Small integers (typical raw data) are never "contained".
  for (Value v : {-1, 0, 1, 42, 1'000'000}) {
    EXPECT_FALSE(d.ContainsValue(v)) << v;
  }
}

TEST(RelationTest, AppendAndAccess) {
  Relation r("R", {"A", "B"});
  EXPECT_EQ(r.arity(), 2u);
  EXPECT_EQ(r.NumRows(), 0u);
  r.AppendRow({1, 2});
  r.AppendRow({3, 4});
  ASSERT_EQ(r.NumRows(), 2u);
  EXPECT_EQ(r.At(0, 0), 1);
  EXPECT_EQ(r.At(1, 1), 4);
  auto row = r.Row(1);
  EXPECT_EQ(row[0], 3);
  EXPECT_EQ(r.ColumnIndex("B"), 1);
  EXPECT_EQ(r.ColumnIndex("Z"), -1);
}

TEST(RelationTest, AppendRowsBulkMatchesPerRowAppend) {
  Relation bulk("R", {"A", "B"});
  Relation loop("R", {"A", "B"});
  bulk.EnableChangeLog(16);
  loop.EnableChangeLog(16);
  const std::vector<Value> flat = {1, 2, 3, 4, 5, 6};
  bulk.AppendRows(flat);
  for (size_t i = 0; i < flat.size(); i += 2) {
    loop.AppendRow(std::span<const Value>(flat.data() + i, 2));
  }
  EXPECT_TRUE(bulk.IdenticalTo(loop));
  // Versioning and the changelog observe per-row granularity, so a cache
  // holding a pre-append version can still repair across the bulk load.
  EXPECT_EQ(bulk.version(), loop.version());
  EXPECT_EQ(bulk.version(), 3u);
  std::vector<RowChange> changes;
  ASSERT_TRUE(bulk.CollectChangesSince(1, &changes));
  ASSERT_EQ(changes.size(), 2u);
  EXPECT_TRUE(changes[0].insert);
  EXPECT_EQ(changes[0].row, (std::vector<Value>{3, 4}));
  EXPECT_EQ(changes[1].row, (std::vector<Value>{5, 6}));
  // Empty bulk append is a no-op, version included.
  bulk.AppendRows({});
  EXPECT_EQ(bulk.version(), 3u);
}

TEST(RelationTest, SwapRemove) {
  Relation r("R", {"A"});
  r.AppendRow({1});
  r.AppendRow({2});
  r.AppendRow({3});
  r.SwapRemoveRow(0);  // last row replaces row 0
  ASSERT_EQ(r.NumRows(), 2u);
  EXPECT_EQ(r.At(0, 0), 3);
  EXPECT_EQ(r.At(1, 0), 2);
  r.SwapRemoveRow(1);
  ASSERT_EQ(r.NumRows(), 1u);
  EXPECT_EQ(r.At(0, 0), 3);
}

TEST(RelationTest, IdenticalTo) {
  Relation a("R", {"A"});
  Relation b("R", {"A"});
  a.AppendRow({1});
  b.AppendRow({1});
  EXPECT_TRUE(a.IdenticalTo(b));
  b.AppendRow({2});
  EXPECT_FALSE(a.IdenticalTo(b));
}

TEST(DatabaseTest, AddFindGet) {
  Database db;
  Relation* r = db.AddRelation("R", {"A"});
  EXPECT_EQ(db.Find("R"), r);
  EXPECT_EQ(db.Find("S"), nullptr);
  EXPECT_TRUE(db.Get("R").ok());
  EXPECT_EQ(db.Get("S").status().code(), Status::Code::kNotFound);
  r->AppendRow({1});
  EXPECT_EQ(db.TotalRows(), 1u);
  EXPECT_EQ(db.relation_names(), std::vector<std::string>{"R"});
}

TEST(DatabaseTest, CloneIsDeep) {
  Database db;
  Relation* r = db.AddRelation("R", {"A"});
  r->AppendRow({1});
  Database copy = db.Clone();
  copy.Find("R")->AppendRow({2});
  EXPECT_EQ(db.Find("R")->NumRows(), 1u);
  EXPECT_EQ(copy.Find("R")->NumRows(), 2u);
}

TEST(DatabaseTest, ClonePreservesCatalogAndDict) {
  Database db;
  AttrId a = db.attrs().Intern("A");
  Value v = db.dict().Intern("hello");
  Database copy = db.Clone();
  EXPECT_EQ(copy.attrs().Lookup("A"), a);
  EXPECT_EQ(copy.dict().Lookup("hello"), v);
}

// ---------------------------------------------------------------------------
// Columnar differential suite: the columnar Relation against a row-major
// reference model, through randomized mutation streams. The model replays
// the documented row-level semantics (append, set, swap-remove, delta) on a
// flat row-major buffer and keeps an unbounded change log; the relation must
// agree on contents, versions, and every change-log read at every step.
// ---------------------------------------------------------------------------

// The pre-columnar storage layout, semantics transcribed from the API docs:
// one flat row-major vector, swap-remove swaps with the last row, Set logs
// erase(old) + insert(new) and bumps the version twice, ApplyDelta deletes
// in descending index order then appends.
struct RowMajorModel {
  size_t arity = 0;
  std::vector<Value> data;  // row-major
  uint64_t version = 0;
  std::vector<RowChange> log;  // unbounded; base version 0

  size_t NumRows() const { return data.size() / arity; }
  std::vector<Value> Row(size_t i) const {
    return {data.begin() + static_cast<long>(i * arity),
            data.begin() + static_cast<long>((i + 1) * arity)};
  }
  void AppendRow(std::span<const Value> row) {
    log.push_back(RowChange{true, {row.begin(), row.end()}});
    data.insert(data.end(), row.begin(), row.end());
    ++version;
  }
  void Set(size_t row, size_t col, Value v) {
    std::vector<Value> old = Row(row);
    std::vector<Value> updated = old;
    updated[col] = v;
    log.push_back(RowChange{false, std::move(old)});
    log.push_back(RowChange{true, std::move(updated)});
    data[row * arity + col] = v;
    version += 2;
  }
  void SwapRemoveRow(size_t i) {
    const size_t n = NumRows();
    log.push_back(RowChange{false, Row(i)});
    for (size_t c = 0; c < arity; ++c) {
      data[i * arity + c] = data[(n - 1) * arity + c];
    }
    data.resize((n - 1) * arity);
    ++version;
  }
  void ApplyDelta(const std::vector<std::vector<Value>>& inserts,
                  std::vector<size_t> delete_rows) {
    std::sort(delete_rows.begin(), delete_rows.end());
    for (size_t i = delete_rows.size(); i-- > 0;) {
      SwapRemoveRow(delete_rows[i]);
    }
    for (const auto& row : inserts) AppendRow(row);
  }
};

void ExpectMatchesModel(const Relation& rel, const RowMajorModel& model) {
  ASSERT_EQ(rel.NumRows(), model.NumRows());
  ASSERT_EQ(rel.version(), model.version);
  // Row view, point view, and column view must all agree with the model.
  std::vector<Value> scratch;
  for (size_t i = 0; i < model.NumRows(); ++i) {
    const std::vector<Value> want = model.Row(i);
    ASSERT_EQ(rel.Row(i), want) << "row " << i;
    rel.RowInto(i, &scratch);
    ASSERT_EQ(scratch, want) << "row " << i;
    ASSERT_TRUE(rel.RowEquals(i, want)) << "row " << i;
    for (size_t c = 0; c < model.arity; ++c) {
      ASSERT_EQ(rel.At(i, c), want[c]) << "row " << i << " col " << c;
    }
  }
  for (size_t c = 0; c < model.arity; ++c) {
    std::span<const Value> col = rel.Column(c);
    ASSERT_EQ(col.size(), model.NumRows());
    for (size_t i = 0; i < col.size(); ++i) {
      ASSERT_EQ(col[i], model.data[i * model.arity + c])
          << "col " << c << " row " << i;
    }
  }
}

void ExpectSameChanges(const std::vector<RowChange>& got,
                       const std::vector<RowChange>& want,
                       const std::string& what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].insert, want[i].insert) << what << " entry " << i;
    EXPECT_EQ(got[i].row, want[i].row) << what << " entry " << i;
  }
}

void RunDifferentialStream(uint64_t seed) {
  Rng rng(seed);
  const size_t arity = 1 + rng.NextBounded(3);
  std::vector<std::string> names;
  for (size_t c = 0; c < arity; ++c) names.push_back("C" + std::to_string(c));
  Relation rel("R", names);
  rel.EnableChangeLog(1 << 14);  // ample: nothing falls out of the window
  RowMajorModel model;
  model.arity = arity;

  auto random_row = [&] {
    std::vector<Value> row(arity);
    for (auto& v : row) v = rng.NextInRange(-4, 4);
    return row;
  };

  for (int step = 0; step < 300; ++step) {
    const size_t n = model.NumRows();
    switch (rng.NextBounded(6)) {
      case 0: {  // single append
        std::vector<Value> row = random_row();
        rel.AppendRow(row);
        model.AppendRow(row);
        break;
      }
      case 1: {  // bulk row-major append
        const size_t rows = rng.NextBounded(4);
        std::vector<Value> flat;
        for (size_t i = 0; i < rows; ++i) {
          std::vector<Value> row = random_row();
          flat.insert(flat.end(), row.begin(), row.end());
          model.AppendRow(row);
        }
        rel.AppendRows(flat);
        break;
      }
      case 2: {  // bulk columnar append
        const size_t rows = rng.NextBounded(4);
        std::vector<std::vector<Value>> columns(arity);
        for (size_t i = 0; i < rows; ++i) {
          std::vector<Value> row = random_row();
          for (size_t c = 0; c < arity; ++c) columns[c].push_back(row[c]);
          model.AppendRow(row);
        }
        rel.AppendColumns(columns);
        break;
      }
      case 3: {  // point overwrite
        if (n == 0) break;
        const size_t row = rng.NextBounded(n);
        const size_t col = rng.NextBounded(arity);
        const Value v = rng.NextInRange(-4, 4);
        rel.Set(row, col, v);
        model.Set(row, col, v);
        break;
      }
      case 4: {  // swap-remove
        if (n == 0) break;
        const size_t row = rng.NextBounded(n);
        rel.SwapRemoveRow(row);
        model.SwapRemoveRow(row);
        break;
      }
      case 5: {  // batched delta
        std::vector<std::vector<Value>> inserts;
        for (size_t i = rng.NextBounded(3); i-- > 0;) {
          inserts.push_back(random_row());
        }
        std::vector<size_t> deletes;
        if (n > 0) {
          for (size_t d = rng.NextBounded(std::min<size_t>(n, 3) + 1);
               d-- > 0;) {
            size_t idx = rng.NextBounded(n);
            if (std::find(deletes.begin(), deletes.end(), idx) ==
                deletes.end()) {
              deletes.push_back(idx);
            }
          }
        }
        ASSERT_TRUE(rel.ApplyDelta(inserts, deletes).ok());
        model.ApplyDelta(inserts, deletes);
        break;
      }
    }
    ExpectMatchesModel(rel, model);

    // Change-log equivalence from a random anchor version: the relation's
    // log must replay exactly the model's suffix (one entry per version
    // step — Set contributes two entries and two version bumps).
    const uint64_t since = rng.NextBounded(model.version + 1);
    std::vector<RowChange> got;
    ASSERT_TRUE(rel.CollectChangesSince(since, &got));
    std::vector<RowChange> want(
        model.log.begin() + static_cast<long>(since), model.log.end());
    ExpectSameChanges(got, want, "since " + std::to_string(since));
    ASSERT_EQ(rel.NumChangesSince(since), want.size());
  }
}

TEST(ColumnarDifferentialTest, MatchesRowMajorModelSeed1) {
  RunDifferentialStream(1);
}
TEST(ColumnarDifferentialTest, MatchesRowMajorModelSeed2) {
  RunDifferentialStream(2);
}
TEST(ColumnarDifferentialTest, MatchesRowMajorModelSeed3) {
  RunDifferentialStream(3);
}

TEST(ColumnarDifferentialTest, ProjectedShardsMatchShardedProjection) {
  // CollectProjectedChangesShardedSince must be exactly: the sharded
  // collection, filtered, with each surviving row projected onto key_cols —
  // same shard routing, same per-shard order.
  for (uint64_t seed : {11u, 12u, 13u}) {
    Rng rng(seed);
    Relation rel("R", {"A", "B", "C"});
    rel.EnableChangeLog(1 << 12);
    for (int step = 0; step < 120; ++step) {
      if (rel.NumRows() > 0 && rng.NextBounded(3) == 0) {
        rel.SwapRemoveRow(rng.NextBounded(rel.NumRows()));
      } else {
        rel.AppendRow({rng.NextInRange(-3, 3), rng.NextInRange(-3, 3),
                       rng.NextInRange(-3, 3)});
      }
    }
    const std::vector<size_t> key_cols = {0, 2};
    auto filter = [](const RowChange& ch) { return ch.row[1] >= 0; };
    for (size_t num_shards : {size_t{1}, size_t{3}, size_t{8}}) {
      const uint64_t since = rng.NextBounded(rel.version() + 1);

      std::vector<std::vector<RowChange>> raw(num_shards);
      ASSERT_TRUE(
          rel.CollectChangesShardedSince(since, key_cols, num_shards, &raw));
      std::vector<std::vector<ProjectedRowChange>> got(num_shards);
      size_t num_changes = 0;
      ASSERT_TRUE(rel.CollectProjectedChangesShardedSince(
          since, key_cols, num_shards, filter, &got, &num_changes));
      ASSERT_EQ(num_changes, rel.NumChangesSince(since));

      for (size_t s = 0; s < num_shards; ++s) {
        std::vector<ProjectedRowChange> want;
        for (const RowChange& ch : raw[s]) {
          if (!filter(ch)) continue;
          ProjectedRowChange pc;
          pc.insert = ch.insert;
          for (size_t col : key_cols) pc.key.push_back(ch.row[col]);
          want.push_back(std::move(pc));
        }
        ASSERT_EQ(got[s].size(), want.size()) << "shard " << s;
        for (size_t i = 0; i < want.size(); ++i) {
          EXPECT_EQ(got[s][i].insert, want[i].insert)
              << "shard " << s << " entry " << i;
          EXPECT_EQ(got[s][i].key, want[i].key)
              << "shard " << s << " entry " << i;
        }
      }
    }
  }
}

TEST(ColumnarDifferentialTest, BatchHashMatchesScalarHash) {
  // The column-batch hash fold (seed + per-column folds) must produce
  // bit-identical hashes to the scalar per-row HashValues — shard routing
  // and hash-table bucketing agree everywhere or repair breaks.
  Rng rng(77);
  Relation rel("R", {"A", "B", "C"});
  for (int i = 0; i < 500; ++i) {
    rel.AppendRow({static_cast<Value>(rng.NextUint64() >> 1),
                   rng.NextInRange(-1000, 1000), rng.NextInRange(0, 3)});
  }
  const size_t n = rel.NumRows();
  std::vector<uint64_t> batch(n);
  HashValuesBatchSeed(batch);
  for (size_t c = 0; c < rel.arity(); ++c) {
    HashValuesBatchFold(rel.Column(c), batch);
  }
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(batch[i], HashValues(rel.Row(i))) << "row " << i;
  }
}

TEST(ColumnarDifferentialTest, CloneSnapshotIsIndependent) {
  Database db;
  Relation* r = db.AddRelation("R", {"A", "B"});
  r->EnableChangeLog(64);
  r->AppendRow({1, 2});
  r->AppendRow({3, 4});
  r->set_column_dictionary(1, true);
  const uint64_t version_at_snapshot = r->version();

  Database snap = db.CloneSnapshot();
  const Relation* sr = snap.Find("R");
  ASSERT_NE(sr, nullptr);
  // Snapshot preserves contents, versions, and schema metadata, but drops
  // the change log (a snapshot never mutates).
  EXPECT_TRUE(sr->IdenticalTo(*r));
  EXPECT_EQ(sr->version(), version_at_snapshot);
  EXPECT_FALSE(sr->change_log_enabled());
  EXPECT_TRUE(sr->column_dictionary(1));
  EXPECT_FALSE(sr->column_dictionary(0));

  // Mutations on either side are invisible to the other: the clone copies
  // every column, not column references.
  r->Set(0, 0, 99);
  r->AppendRow({5, 6});
  EXPECT_EQ(sr->NumRows(), 2u);
  EXPECT_EQ(sr->At(0, 0), 1);
  snap.Find("R")->SwapRemoveRow(0);
  EXPECT_EQ(r->NumRows(), 3u);
  EXPECT_EQ(r->At(0, 0), 99);
}

TEST(ColumnarDifferentialTest, MemoryBytesTracksColumnsAndLog) {
  Relation rel("R", {"A", "B"});
  const size_t empty = rel.MemoryBytes();
  for (int i = 0; i < 256; ++i) rel.AppendRow({i, -i});
  const size_t loaded = rel.MemoryBytes();
  EXPECT_GE(loaded, empty + 2 * 256 * sizeof(Value));
  rel.EnableChangeLog(1024);
  for (int i = 0; i < 64; ++i) rel.AppendRow({i, i});
  EXPECT_GT(rel.MemoryBytes(), loaded);
}

TEST(DictionaryTest, MemoryBytesGrowsWithInterning) {
  Dictionary d;
  const size_t empty = d.MemoryBytes();
  for (int i = 0; i < 128; ++i) {
    d.Intern("value-" + std::to_string(i) + "-with-some-padding");
  }
  EXPECT_GT(d.MemoryBytes(), empty);
}

TEST(RelationTest, DictionaryFlagsSurviveCopies) {
  Database db;
  Relation* r = db.AddRelation("R", {"A", "B", "C"});
  r->set_column_dictionary(0, true);
  r->set_column_dictionary(2, true);
  Database copy = db.Clone();
  const Relation* cr = copy.Find("R");
  EXPECT_TRUE(cr->column_dictionary(0));
  EXPECT_FALSE(cr->column_dictionary(1));
  EXPECT_TRUE(cr->column_dictionary(2));
  // Flags are schema metadata: flipping one side never leaks to the other.
  copy.Find("R")->set_column_dictionary(1, true);
  EXPECT_FALSE(r->column_dictionary(1));
}

}  // namespace
}  // namespace lsens
