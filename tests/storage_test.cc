#include <gtest/gtest.h>

#include "storage/attribute_set.h"
#include "storage/catalog.h"
#include "storage/database.h"
#include "storage/dictionary.h"
#include "storage/relation.h"

namespace lsens {
namespace {

TEST(AttributeSetTest, MakeSortsAndDedups) {
  EXPECT_EQ(MakeAttributeSet({3, 1, 2, 1, 3}), (AttributeSet{1, 2, 3}));
  EXPECT_TRUE(IsValidAttributeSet({1, 2, 3}));
  EXPECT_FALSE(IsValidAttributeSet({1, 1, 2}));
  EXPECT_FALSE(IsValidAttributeSet({2, 1}));
}

TEST(AttributeSetTest, SetAlgebra) {
  AttributeSet a{1, 3, 5};
  AttributeSet b{3, 4, 5};
  EXPECT_EQ(Union(a, b), (AttributeSet{1, 3, 4, 5}));
  EXPECT_EQ(Intersect(a, b), (AttributeSet{3, 5}));
  EXPECT_EQ(Difference(a, b), (AttributeSet{1}));
  EXPECT_TRUE(Contains(a, 3));
  EXPECT_FALSE(Contains(a, 4));
  EXPECT_TRUE(IsSubset({3, 5}, a));
  EXPECT_FALSE(IsSubset({3, 4}, a));
  EXPECT_TRUE(Intersects(a, b));
  EXPECT_FALSE(Intersects({1, 2}, {3, 4}));
  EXPECT_TRUE(IsSubset({}, a));
  EXPECT_FALSE(Intersects({}, a));
}

TEST(CatalogTest, InternIsIdempotent) {
  AttributeCatalog cat;
  AttrId a = cat.Intern("NK");
  AttrId b = cat.Intern("CK");
  EXPECT_NE(a, b);
  EXPECT_EQ(cat.Intern("NK"), a);
  EXPECT_EQ(cat.Lookup("NK"), a);
  EXPECT_EQ(cat.Lookup("missing"), kInvalidAttr);
  EXPECT_EQ(cat.Name(a), "NK");
  EXPECT_EQ(cat.size(), 2u);
}

TEST(DictionaryTest, RoundTrips) {
  Dictionary d;
  Value a1 = d.Intern("a1");
  Value b2 = d.Intern("b2");
  EXPECT_NE(a1, b2);
  EXPECT_EQ(d.Intern("a1"), a1);
  EXPECT_EQ(d.Lookup("a1"), a1);
  EXPECT_EQ(d.Lookup("zz"), -1);
  EXPECT_EQ(d.String(b2), "b2");
  EXPECT_TRUE(d.ContainsValue(a1));
  EXPECT_FALSE(d.ContainsValue(999));
}

TEST(DictionaryTest, HeterogeneousLookupUsesViewsDirectly) {
  // Intern/Lookup take string_views that are not null-terminated and may
  // be slices of a larger buffer; the map probes with the view itself
  // (transparent hash/eq), so the slice's bounds must be respected
  // exactly — no C-string assumptions, no temporary std::string.
  Dictionary d;
  const std::string buffer = "alphabetagamma";
  const std::string_view alpha = std::string_view(buffer).substr(0, 5);
  const std::string_view beta = std::string_view(buffer).substr(5, 4);
  Value va = d.Intern(alpha);
  Value vb = d.Intern(beta);
  EXPECT_NE(va, vb);
  EXPECT_EQ(d.Lookup(std::string_view(buffer).substr(0, 5)), va);
  EXPECT_EQ(d.Lookup("beta"), vb);
  EXPECT_EQ(d.Lookup(std::string_view(buffer)), -1);
  EXPECT_EQ(d.String(va), "alpha");
  // Embedded NULs are part of the key, not terminators.
  const std::string_view with_nul("a\0b", 3);
  Value vn = d.Intern(with_nul);
  EXPECT_EQ(d.Lookup(with_nul), vn);
  EXPECT_EQ(d.Lookup(std::string_view("a", 1)), -1);
  EXPECT_EQ(d.String(vn), std::string("a\0b", 3));
}

TEST(DictionaryTest, CodesNeverCollideWithOrdinaryIntegers) {
  Dictionary d;
  Value code = d.Intern("first");
  EXPECT_GE(code, Dictionary::kBase);
  // Small integers (typical raw data) are never "contained".
  for (Value v : {-1, 0, 1, 42, 1'000'000}) {
    EXPECT_FALSE(d.ContainsValue(v)) << v;
  }
}

TEST(RelationTest, AppendAndAccess) {
  Relation r("R", {"A", "B"});
  EXPECT_EQ(r.arity(), 2u);
  EXPECT_EQ(r.NumRows(), 0u);
  r.AppendRow({1, 2});
  r.AppendRow({3, 4});
  ASSERT_EQ(r.NumRows(), 2u);
  EXPECT_EQ(r.At(0, 0), 1);
  EXPECT_EQ(r.At(1, 1), 4);
  auto row = r.Row(1);
  EXPECT_EQ(row[0], 3);
  EXPECT_EQ(r.ColumnIndex("B"), 1);
  EXPECT_EQ(r.ColumnIndex("Z"), -1);
}

TEST(RelationTest, AppendRowsBulkMatchesPerRowAppend) {
  Relation bulk("R", {"A", "B"});
  Relation loop("R", {"A", "B"});
  bulk.EnableChangeLog(16);
  loop.EnableChangeLog(16);
  const std::vector<Value> flat = {1, 2, 3, 4, 5, 6};
  bulk.AppendRows(flat);
  for (size_t i = 0; i < flat.size(); i += 2) {
    loop.AppendRow(std::span<const Value>(flat.data() + i, 2));
  }
  EXPECT_TRUE(bulk.IdenticalTo(loop));
  // Versioning and the changelog observe per-row granularity, so a cache
  // holding a pre-append version can still repair across the bulk load.
  EXPECT_EQ(bulk.version(), loop.version());
  EXPECT_EQ(bulk.version(), 3u);
  std::vector<RowChange> changes;
  ASSERT_TRUE(bulk.CollectChangesSince(1, &changes));
  ASSERT_EQ(changes.size(), 2u);
  EXPECT_TRUE(changes[0].insert);
  EXPECT_EQ(changes[0].row, (std::vector<Value>{3, 4}));
  EXPECT_EQ(changes[1].row, (std::vector<Value>{5, 6}));
  // Empty bulk append is a no-op, version included.
  bulk.AppendRows({});
  EXPECT_EQ(bulk.version(), 3u);
}

TEST(RelationTest, SwapRemove) {
  Relation r("R", {"A"});
  r.AppendRow({1});
  r.AppendRow({2});
  r.AppendRow({3});
  r.SwapRemoveRow(0);  // last row replaces row 0
  ASSERT_EQ(r.NumRows(), 2u);
  EXPECT_EQ(r.At(0, 0), 3);
  EXPECT_EQ(r.At(1, 0), 2);
  r.SwapRemoveRow(1);
  ASSERT_EQ(r.NumRows(), 1u);
  EXPECT_EQ(r.At(0, 0), 3);
}

TEST(RelationTest, IdenticalTo) {
  Relation a("R", {"A"});
  Relation b("R", {"A"});
  a.AppendRow({1});
  b.AppendRow({1});
  EXPECT_TRUE(a.IdenticalTo(b));
  b.AppendRow({2});
  EXPECT_FALSE(a.IdenticalTo(b));
}

TEST(DatabaseTest, AddFindGet) {
  Database db;
  Relation* r = db.AddRelation("R", {"A"});
  EXPECT_EQ(db.Find("R"), r);
  EXPECT_EQ(db.Find("S"), nullptr);
  EXPECT_TRUE(db.Get("R").ok());
  EXPECT_EQ(db.Get("S").status().code(), Status::Code::kNotFound);
  r->AppendRow({1});
  EXPECT_EQ(db.TotalRows(), 1u);
  EXPECT_EQ(db.relation_names(), std::vector<std::string>{"R"});
}

TEST(DatabaseTest, CloneIsDeep) {
  Database db;
  Relation* r = db.AddRelation("R", {"A"});
  r->AppendRow({1});
  Database copy = db.Clone();
  copy.Find("R")->AppendRow({2});
  EXPECT_EQ(db.Find("R")->NumRows(), 1u);
  EXPECT_EQ(copy.Find("R")->NumRows(), 2u);
}

TEST(DatabaseTest, ClonePreservesCatalogAndDict) {
  Database db;
  AttrId a = db.attrs().Intern("A");
  Value v = db.dict().Intern("hello");
  Database copy = db.Clone();
  EXPECT_EQ(copy.attrs().Lookup("A"), a);
  EXPECT_EQ(copy.dict().Lookup("hello"), v);
}

}  // namespace
}  // namespace lsens
