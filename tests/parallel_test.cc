// The parallel execution subsystem: ThreadPool semantics, ExecContextPool
// isolation, ParallelApply dispatch, and — the load-bearing part — a
// differential suite pinning every parallel path to the serial oracle:
// for threads ∈ {0, 1, 2, 8}, sensitivities, tuple sensitivities, join
// outputs, and the merged operator-stat counters must be bit-identical.

#include <algorithm>
#include <atomic>
#include <set>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "exec/counted_relation.h"
#include "exec/exec_context.h"
#include "exec/join.h"
#include "query/eval.h"
#include "sensitivity/tsens.h"
#include "sensitivity/tsens_engine.h"
#include "test_util.h"

namespace lsens {
namespace {

using lsens::testing::MakeRandomAcyclicInstance;
using lsens::testing::MakeRandomTriangleInstance;
using lsens::testing::PaperExample;
using lsens::testing::RandomQuerySpec;

constexpr int kThreadSettings[] = {1, 2, 8};

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, SubmitAndWaitRunsEveryTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_workers(), 4u);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&](size_t) { ran.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, WorkerIndexStaysInRange) {
  ThreadPool pool(3);
  std::atomic<bool> out_of_range{false};
  for (int i = 0; i < 64; ++i) {
    pool.Submit([&](size_t worker) {
      if (worker >= 3) out_of_range.store(true);
    });
  }
  pool.Wait();
  EXPECT_FALSE(out_of_range.load());
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int batch = 0; batch < 3; ++batch) {
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&](size_t) { ran.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(ran.load(), (batch + 1) * 10);
  }
}

TEST(ThreadPoolTest, ExceptionPropagatesAndPoolSurvives) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&, i](size_t) {
      if (i == 3) throw std::runtime_error("task 3 failed");
      ran.fetch_add(1);
    });
  }
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // Non-throwing tasks of the batch all still ran, and the pool is usable.
  EXPECT_EQ(ran.load(), 7);
  pool.Submit([&](size_t) { ran.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPoolTest, OnWorkerThreadDistinguishesPoolThreads) {
  EXPECT_FALSE(ThreadPool::OnWorkerThread());
  ThreadPool pool(2);
  std::atomic<bool> on_worker{false};
  pool.Submit([&](size_t) { on_worker.store(ThreadPool::OnWorkerThread()); });
  pool.Wait();
  EXPECT_TRUE(on_worker.load());
  EXPECT_FALSE(ThreadPool::OnWorkerThread());
}

// Task accounting is per submitting thread: two top-level callers sharing
// one pool never wait on — or receive exceptions from — each other.
TEST(ThreadPoolTest, ConcurrentCallersAreIndependent) {
  ThreadPool pool(4);
  std::atomic<int> ok_ran{0};
  bool clean_caller_threw = false;
  bool failing_caller_threw = false;
  std::thread clean_caller([&] {
    for (int i = 0; i < 32; ++i) {
      pool.Submit([&](size_t) { ok_ran.fetch_add(1); });
    }
    try {
      pool.Wait();
    } catch (...) {
      clean_caller_threw = true;
    }
  });
  std::thread failing_caller([&] {
    for (int i = 0; i < 32; ++i) {
      pool.Submit([i](size_t) {
        if (i == 7) throw std::runtime_error("failing caller's task");
      });
    }
    try {
      pool.Wait();
    } catch (const std::runtime_error&) {
      failing_caller_threw = true;
    }
  });
  clean_caller.join();
  failing_caller.join();
  EXPECT_FALSE(clean_caller_threw);
  EXPECT_TRUE(failing_caller_threw);
  EXPECT_EQ(ok_ran.load(), 32);
}

// Death tests fork; keep them away from sanitizer-threaded runs. GCC
// defines __SANITIZE_THREAD__ under -fsanitize=thread; Clang only reports
// it through __has_feature(thread_sanitizer).
#if defined(__SANITIZE_THREAD__)
#define LSENS_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define LSENS_TSAN_BUILD 1
#endif
#endif
#ifndef LSENS_TSAN_BUILD
#define LSENS_TSAN_BUILD 0
#endif

#if !LSENS_TSAN_BUILD
TEST(ThreadPoolDeathTest, NestedSubmissionRejected) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  EXPECT_DEATH(
      {
        ThreadPool pool(2);
        pool.Submit([&](size_t) { pool.Submit([](size_t) {}); });
        pool.Wait();
      },
      "nested ThreadPool submission");
}

#ifndef NDEBUG
TEST(ThreadPoolDeathTest, PooledWorkerMustNotHitThreadLocalFallback) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  EXPECT_DEATH(
      {
        ThreadPool pool(2);
        pool.Submit([](size_t) { DefaultExecContext(); });
        pool.Wait();
      },
      "fallback hit on a pool worker");
}
#endif  // NDEBUG
#endif  // !LSENS_TSAN_BUILD

// ---------------------------------------------------------------------------
// ExecContextPool
// ---------------------------------------------------------------------------

TEST(ExecContextPoolTest, ContextsAreDistinctPooledWorkers) {
  ExecContextPool pool;
  pool.Ensure(3, /*collect_stats=*/true);
  ASSERT_EQ(pool.size(), 3u);
  std::set<const ExecContext*> distinct;
  for (size_t i = 0; i < pool.size(); ++i) {
    distinct.insert(&pool.context(i));
    EXPECT_TRUE(pool.context(i).is_pool_worker());
    EXPECT_TRUE(pool.context(i).collect_stats);
  }
  EXPECT_EQ(distinct.size(), 3u);
}

TEST(ExecContextPoolTest, ArenasAreNeverSharedAcrossWorkers) {
  ExecContextPool pool;
  pool.Ensure(2, true);
  pool.context(0).perm_a().assign({1, 2, 3});
  EXPECT_TRUE(pool.context(1).perm_a().empty());
  EXPECT_NE(&pool.context(0).perm_a(), &pool.context(1).perm_a());
  EXPECT_NE(&pool.context(0).group_table(), &pool.context(1).group_table());
}

TEST(ExecContextPoolTest, ArenasPersistAcrossEnsure) {
  ExecContextPool pool;
  pool.Ensure(2, true);
  ExecContext* first = &pool.context(0);
  pool.context(0).perm_a().assign({7, 8});
  pool.Ensure(4, true);  // grows, never recreates
  EXPECT_EQ(pool.size(), 4u);
  EXPECT_EQ(&pool.context(0), first);
  EXPECT_EQ(pool.context(0).perm_a(), (std::vector<uint32_t>{7, 8}));
  pool.Ensure(1, true);  // never shrinks
  EXPECT_EQ(pool.size(), 4u);
}

TEST(ExecContextPoolTest, MergeStatsSumsAndClearsWorkers) {
  ExecContextPool pool;
  pool.Ensure(2, true);
  pool.context(0).Record("op.b", 10, 5, 1, 0.25);
  pool.context(1).Record("op.b", 30, 15, 3, 0.5);
  pool.context(1).Record("op.a", 1, 1, 0, 0.125);
  ExecContext primary;
  primary.Record("op.b", 100, 50, 10, 1.0);
  pool.MergeStatsInto(primary);

  const OperatorStats* b = primary.FindStats("op.b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->calls, 3u);
  EXPECT_EQ(b->rows_in, 140u);
  EXPECT_EQ(b->rows_out, 70u);
  EXPECT_EQ(b->build_rows, 14u);
  EXPECT_DOUBLE_EQ(b->wall_seconds, 1.75);
  const OperatorStats* a = primary.FindStats("op.a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->calls, 1u);
  EXPECT_FALSE(pool.context(0).has_stats());
  EXPECT_FALSE(pool.context(1).has_stats());
}

// ---------------------------------------------------------------------------
// ParallelApply
// ---------------------------------------------------------------------------

TEST(ParallelApplyTest, RunsEveryTaskExactlyOnce) {
  ExecContext primary;
  std::vector<std::atomic<int>> hits(97);
  ParallelApply(primary, 8, hits.size(),
                [&](size_t t, ExecContext&) { hits[t].fetch_add(1); });
  for (size_t t = 0; t < hits.size(); ++t) {
    EXPECT_EQ(hits[t].load(), 1) << "task " << t;
  }
}

TEST(ParallelApplyTest, SerialFallbackRunsInlineOnPrimary) {
  ExecContext primary;
  std::vector<const ExecContext*> seen;
  ParallelApply(primary, 0, 4,
                [&](size_t, ExecContext& ctx) { seen.push_back(&ctx); });
  ASSERT_EQ(seen.size(), 4u);
  for (const ExecContext* ctx : seen) EXPECT_EQ(ctx, &primary);
}

TEST(ParallelApplyTest, WorkerStatsMergeBackIntoPrimary) {
  ExecContext primary;
  ParallelApply(primary, 8, 50, [&](size_t, ExecContext& ctx) {
    EXPECT_NE(&ctx, &primary);
    EXPECT_TRUE(ctx.is_pool_worker());
    ctx.Record("parallel.op", 2, 1, 0, 0.0);
  });
  const OperatorStats* s = primary.FindStats("parallel.op");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->calls, 50u);
  EXPECT_EQ(s->rows_in, 100u);
}

TEST(ParallelApplyTest, TaskExceptionPropagates) {
  ExecContext primary;
  EXPECT_THROW(ParallelApply(primary, 4, 16,
                             [&](size_t t, ExecContext&) {
                               if (t == 11) throw std::runtime_error("boom");
                             }),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// Differential suite: parallel ≡ serial, bit for bit
// ---------------------------------------------------------------------------

void ExpectSameRelation(const CountedRelation& expected,
                        const CountedRelation& actual,
                        const std::string& what) {
  ASSERT_EQ(expected.attrs(), actual.attrs()) << what;
  ASSERT_EQ(expected.NumRows(), actual.NumRows()) << what;
  EXPECT_EQ(expected.default_count(), actual.default_count()) << what;
  for (size_t i = 0; i < expected.NumRows(); ++i) {
    std::span<const Value> er = expected.Row(i);
    std::span<const Value> ar = actual.Row(i);
    ASSERT_TRUE(std::equal(er.begin(), er.end(), ar.begin()))
        << what << " row " << i;
    ASSERT_EQ(expected.CountAt(i), actual.CountAt(i)) << what << " row " << i;
  }
}

void ExpectSameResult(const SensitivityResult& expected,
                      const SensitivityResult& actual,
                      const std::string& what) {
  EXPECT_EQ(expected.local_sensitivity, actual.local_sensitivity) << what;
  EXPECT_EQ(expected.argmax_atom, actual.argmax_atom) << what;
  ASSERT_EQ(expected.atoms.size(), actual.atoms.size()) << what;
  for (size_t a = 0; a < expected.atoms.size(); ++a) {
    const AtomSensitivity& e = expected.atoms[a];
    const AtomSensitivity& r = actual.atoms[a];
    const std::string atom_what = what + " atom " + std::to_string(a);
    EXPECT_EQ(e.max_sensitivity, r.max_sensitivity) << atom_what;
    EXPECT_EQ(e.argmax, r.argmax) << atom_what;
    EXPECT_EQ(e.table_attrs, r.table_attrs) << atom_what;
    EXPECT_EQ(e.free_vars, r.free_vars) << atom_what;
    EXPECT_EQ(e.skipped, r.skipped) << atom_what;
    EXPECT_EQ(e.approximate, r.approximate) << atom_what;
    ASSERT_EQ(e.table.has_value(), r.table.has_value()) << atom_what;
    if (e.table.has_value()) {
      ExpectSameRelation(*e.table, *r.table, atom_what + " table");
    }
  }
}

// The deterministic stat fields (everything but wall time) must match the
// serial profile exactly: same operator set, same calls/rows/build counts.
void ExpectSameStats(const ExecContext& expected, const ExecContext& actual,
                     const std::string& what) {
  std::set<std::string> names;
  for (const OperatorStats& s : expected.stats()) names.insert(s.name);
  std::set<std::string> actual_names;
  for (const OperatorStats& s : actual.stats()) actual_names.insert(s.name);
  EXPECT_EQ(names, actual_names) << what;
  for (const std::string& name : names) {
    const OperatorStats* e = expected.FindStats(name);
    const OperatorStats* r = actual.FindStats(name);
    ASSERT_NE(e, nullptr) << what << " " << name;
    ASSERT_NE(r, nullptr) << what << " " << name;
    EXPECT_EQ(e->calls, r->calls) << what << " " << name;
    EXPECT_EQ(e->rows_in, r->rows_in) << what << " " << name;
    EXPECT_EQ(e->rows_out, r->rows_out) << what << " " << name;
    EXPECT_EQ(e->build_rows, r->build_rows) << what << " " << name;
  }
}

// Runs ComputeLocalSensitivity at every thread setting and pins results,
// per-tuple sensitivities (when tables are kept), and merged stat counters
// to the threads = 0 oracle.
void RunSensitivityDifferential(const PaperExample& ex, bool keep_tables,
                                size_t top_k, const std::string& what) {
  ExecContext serial_ctx;
  TSensComputeOptions serial_opts;
  serial_opts.join.ctx = &serial_ctx;
  serial_opts.keep_tables = keep_tables;
  serial_opts.top_k = top_k;
  auto oracle = ComputeLocalSensitivity(ex.query, ex.db, serial_opts);
  ASSERT_TRUE(oracle.ok()) << what << ": " << oracle.status().ToString();

  for (int threads : kThreadSettings) {
    const std::string run = what + " threads=" + std::to_string(threads);
    ExecContext ctx;
    TSensComputeOptions opts = serial_opts;
    opts.join.ctx = &ctx;
    opts.join.threads = threads;
    auto parallel = ComputeLocalSensitivity(ex.query, ex.db, opts);
    ASSERT_TRUE(parallel.ok()) << run << ": " << parallel.status().ToString();
    ExpectSameResult(*oracle, *parallel, run);
    ExpectSameStats(serial_ctx, ctx, run);

    if (keep_tables) {
      for (int a = 0; a < ex.query.num_atoms(); ++a) {
        auto serial_sens = TupleSensitivities(*oracle, ex.query, ex.db, a);
        auto parallel_sens =
            TupleSensitivities(*parallel, ex.query, ex.db, a, opts);
        ASSERT_EQ(serial_sens.ok(), parallel_sens.ok()) << run;
        if (!serial_sens.ok()) continue;
        EXPECT_EQ(*serial_sens, *parallel_sens) << run << " atom " << a;
      }
    }
  }
}

TEST(ParallelDifferentialTest, RandomAcyclicSensitivities) {
  Rng rng(2026);
  RandomQuerySpec spec;
  for (int seed = 0; seed < 12; ++seed) {
    PaperExample ex = MakeRandomAcyclicInstance(rng, spec);
    const std::string what = "acyclic seed " + std::to_string(seed);
    RunSensitivityDifferential(ex, /*keep_tables=*/false, /*top_k=*/0, what);
    RunSensitivityDifferential(ex, /*keep_tables=*/true, /*top_k=*/0,
                               what + " tables");
  }
}

TEST(ParallelDifferentialTest, RandomAcyclicTopK) {
  Rng rng(7);
  RandomQuerySpec spec;
  spec.max_rows = 12;
  for (int seed = 0; seed < 8; ++seed) {
    PaperExample ex = MakeRandomAcyclicInstance(rng, spec);
    RunSensitivityDifferential(ex, /*keep_tables=*/false, /*top_k=*/3,
                               "top-k seed " + std::to_string(seed));
  }
}

TEST(ParallelDifferentialTest, RandomTriangleSensitivities) {
  Rng rng(99);
  for (int seed = 0; seed < 8; ++seed) {
    PaperExample ex = MakeRandomTriangleInstance(rng, /*max_rows=*/8,
                                                 /*domain_size=*/3);
    RunSensitivityDifferential(ex, /*keep_tables=*/false, /*top_k=*/0,
                               "triangle seed " + std::to_string(seed));
    RunSensitivityDifferential(ex, /*keep_tables=*/true, /*top_k=*/0,
                               "triangle tables seed " + std::to_string(seed));
  }
}

TEST(ParallelDifferentialTest, DownwardSensitivities) {
  Rng rng(41);
  RandomQuerySpec spec;
  for (int seed = 0; seed < 6; ++seed) {
    PaperExample ex = MakeRandomAcyclicInstance(rng, spec);
    TSensComputeOptions serial_opts;
    auto oracle =
        ComputeDownwardLocalSensitivity(ex.query, ex.db, serial_opts);
    ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
    for (int threads : kThreadSettings) {
      TSensComputeOptions opts;
      opts.join.threads = threads;
      auto parallel = ComputeDownwardLocalSensitivity(ex.query, ex.db, opts);
      ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
      ExpectSameResult(*oracle, *parallel,
                       "downward seed " + std::to_string(seed) + " threads=" +
                           std::to_string(threads));
    }
  }
}

TEST(ParallelDifferentialTest, CountQueryMatchesSerial) {
  Rng rng(17);
  RandomQuerySpec spec;
  for (int seed = 0; seed < 8; ++seed) {
    PaperExample ex = MakeRandomAcyclicInstance(rng, spec);
    auto oracle = CountQuery(ex.query, ex.db);
    ASSERT_TRUE(oracle.ok());
    for (int threads : kThreadSettings) {
      JoinOptions opts;
      opts.threads = threads;
      auto parallel = CountQuery(ex.query, ex.db, opts);
      ASSERT_TRUE(parallel.ok());
      EXPECT_EQ(*oracle, *parallel) << "seed " << seed << " threads "
                                    << threads;
    }
  }
}

// A join wide enough to cross the partitioned-probe threshold (4096 probe
// rows), so this exercises the genuinely parallel hash-join path.
CountedRelation MakeRandomCounted(Rng& rng, size_t rows, AttributeSet attrs,
                                  uint64_t domain) {
  CountedRelation rel(std::move(attrs));
  std::vector<Value> row(rel.arity());
  for (size_t i = 0; i < rows; ++i) {
    for (auto& v : row) v = static_cast<Value>(rng.NextBounded(domain));
    rel.AppendRow(row, Count::One());
  }
  rel.Normalize();
  return rel;
}

TEST(ParallelDifferentialTest, LargeHashJoinOutputsMatchSerial) {
  Rng rng(5);
  const size_t rows = 12000;
  CountedRelation a = MakeRandomCounted(rng, rows, {1, 2}, rows / 4);
  CountedRelation b = MakeRandomCounted(rng, rows, {2, 3}, rows / 4);

  ExecContext serial_ctx;
  JoinOptions serial_opts{JoinAlgorithm::kHash, &serial_ctx, 0};
  CountedRelation oracle = NaturalJoin(a, b, serial_opts);

  for (int threads : kThreadSettings) {
    ExecContext ctx;
    JoinOptions opts{JoinAlgorithm::kHash, &ctx, threads};
    CountedRelation parallel = NaturalJoin(a, b, opts);
    const std::string what = "join threads=" + std::to_string(threads);
    ExpectSameRelation(oracle, parallel, what);
    ExpectSameStats(serial_ctx, ctx, what);
  }
}

// A private relation past the TupleSensitivities fan-out threshold (4096
// rows), so the chunked per-tuple lookup path genuinely runs.
TEST(ParallelDifferentialTest, LargeRelationTupleSensitivities) {
  Rng rng(12);
  PaperExample ex;
  auto* r = ex.db.AddRelation("R", {"A", "B"});
  auto* s = ex.db.AddRelation("S", {"B", "C"});
  for (int i = 0; i < 6000; ++i) {
    r->AppendRow({static_cast<Value>(rng.NextBounded(200)),
                  static_cast<Value>(rng.NextBounded(50))});
  }
  for (int i = 0; i < 300; ++i) {
    s->AppendRow({static_cast<Value>(rng.NextBounded(50)),
                  static_cast<Value>(rng.NextBounded(40))});
  }
  ex.query.AddAtom(ex.db, "R", {"A", "B"});
  ex.query.AddAtom(ex.db, "S", {"B", "C"});

  TSensComputeOptions serial_opts;
  serial_opts.keep_tables = true;
  auto oracle = ComputeLocalSensitivity(ex.query, ex.db, serial_opts);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  auto serial_sens = TupleSensitivities(*oracle, ex.query, ex.db, 0);
  ASSERT_TRUE(serial_sens.ok());

  for (int threads : kThreadSettings) {
    TSensComputeOptions opts = serial_opts;
    opts.join.threads = threads;
    auto parallel = ComputeLocalSensitivity(ex.query, ex.db, opts);
    ASSERT_TRUE(parallel.ok());
    ExpectSameResult(*oracle, *parallel,
                     "large tuple-sens threads=" + std::to_string(threads));
    auto parallel_sens =
        TupleSensitivities(*parallel, ex.query, ex.db, 0, opts);
    ASSERT_TRUE(parallel_sens.ok());
    EXPECT_EQ(*serial_sens, *parallel_sens) << "threads " << threads;
  }
}

TEST(ParallelDifferentialTest, LargeAutoJoinAndEstimateMatchSerial) {
  Rng rng(6);
  const size_t rows = 9000;
  CountedRelation a = MakeRandomCounted(rng, rows, {1, 2}, rows / 3);
  CountedRelation b = MakeRandomCounted(rng, rows / 2, {2, 3}, rows / 3);

  CountedRelation oracle = NaturalJoin(a, b, {});
  const size_t est = EstimateJoinRows(a, b);
  for (int threads : kThreadSettings) {
    ExecContext ctx;
    JoinOptions opts{JoinAlgorithm::kAuto, &ctx, threads};
    ExpectSameRelation(oracle, NaturalJoin(a, b, opts),
                       "auto join threads=" + std::to_string(threads));
    EXPECT_EQ(est, EstimateJoinRows(a, b, &ctx, threads));
  }
}

}  // namespace
}  // namespace lsens
