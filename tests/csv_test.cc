#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <random>
#include <string>

#include "storage/csv.h"
#include "storage/database.h"

namespace lsens {
namespace {

TEST(CsvTest, LoadsIntegersAndStrings) {
  Database db;
  Status s = LoadCsvText(db, "Flights",
                         "src,dst,count\n"
                         "NYC,LHR,3\n"
                         "NYC,CDG,2\n");
  ASSERT_TRUE(s.ok()) << s.ToString();
  const Relation* rel = db.Find("Flights");
  ASSERT_NE(rel, nullptr);
  EXPECT_EQ(rel->NumRows(), 2u);
  EXPECT_EQ(rel->column_names(),
            (std::vector<std::string>{"src", "dst", "count"}));
  // Strings interned; integers verbatim.
  EXPECT_EQ(rel->At(0, 0), db.dict().Lookup("NYC"));
  EXPECT_EQ(rel->At(0, 1), db.dict().Lookup("LHR"));
  EXPECT_EQ(rel->At(0, 2), 3);
  EXPECT_EQ(rel->At(1, 2), 2);
}

TEST(CsvTest, TrimsWhitespaceAndSkipsBlankLines) {
  Database db;
  Status s = LoadCsvText(db, "R",
                         " a , b \n"
                         " 1 ,  2 \n"
                         "\n"
                         "3,4\n");
  ASSERT_TRUE(s.ok()) << s.ToString();
  const Relation* rel = db.Find("R");
  EXPECT_EQ(rel->NumRows(), 2u);
  EXPECT_EQ(rel->column_names()[0], "a");
  EXPECT_EQ(rel->At(0, 0), 1);
  EXPECT_EQ(rel->At(1, 1), 4);
}

TEST(CsvTest, NegativeIntegersParse) {
  Database db;
  ASSERT_TRUE(LoadCsvText(db, "R", "a\n-17\n+4\n").ok());
  EXPECT_EQ(db.Find("R")->At(0, 0), -17);
  EXPECT_EQ(db.Find("R")->At(1, 0), 4);
}

TEST(CsvTest, RejectsBadInput) {
  Database db;
  EXPECT_FALSE(LoadCsvText(db, "R", "").ok());           // no header
  EXPECT_FALSE(LoadCsvText(db, "S", "a,,b\n").ok());     // empty column
  EXPECT_FALSE(LoadCsvText(db, "T", "a,b\n1\n").ok());   // arity mismatch
  ASSERT_TRUE(LoadCsvText(db, "U", "a\n1\n").ok());
  EXPECT_FALSE(LoadCsvText(db, "U", "a\n1\n").ok());     // duplicate name
}

TEST(CsvTest, RoundTripsThroughText) {
  Database db;
  ASSERT_TRUE(LoadCsvText(db, "R", "a,b\nx,1\ny,2\n").ok());
  auto text = SaveCsvText(db, "R", /*render_dictionary=*/true);
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, "a,b\nx,1\ny,2\n");
  // Numeric rendering shows the interned codes instead (offset by the
  // dictionary base so they never collide with real integers).
  auto numeric = SaveCsvText(db, "R", /*render_dictionary=*/false);
  ASSERT_TRUE(numeric.ok());
  EXPECT_EQ(*numeric, "a,b\n" + std::to_string(Dictionary::kBase) + ",1\n" +
                          std::to_string(Dictionary::kBase + 1) + ",2\n");
}

TEST(CsvTest, SaveUnknownRelationFails) {
  Database db;
  EXPECT_EQ(SaveCsvText(db, "nope").status().code(),
            Status::Code::kNotFound);
}

TEST(CsvTest, FileRoundTrip) {
  // TempDir() honors TEST_TMPDIR; the random suffix keeps concurrent ctest
  // invocations of this binary from clobbering each other's file.
  const std::string path_str = ::testing::TempDir() + "lsens_csv_test_" +
                               std::to_string(std::random_device{}()) + ".csv";
  const char* path = path_str.c_str();
  {
    Database db;
    ASSERT_TRUE(LoadCsvText(db, "R", "k,v\n1,one\n2,two\n").ok());
    ASSERT_TRUE(SaveCsv(db, "R", path, /*render_dictionary=*/true).ok());
  }
  {
    Database db;
    Status s = LoadCsv(db, "R", path);
    ASSERT_TRUE(s.ok()) << s.ToString();
    const Relation* rel = db.Find("R");
    ASSERT_EQ(rel->NumRows(), 2u);
    EXPECT_EQ(rel->At(0, 0), 1);
    EXPECT_EQ(rel->At(1, 1), db.dict().Lookup("two"));
  }
  std::remove(path);
  Database db;
  EXPECT_EQ(LoadCsv(db, "R", "/nonexistent/nope.csv").code(),
            Status::Code::kNotFound);
}

}  // namespace
}  // namespace lsens
