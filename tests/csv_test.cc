#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <random>
#include <string>

#include "storage/csv.h"
#include "storage/database.h"

namespace lsens {
namespace {

TEST(CsvTest, LoadsIntegersAndStrings) {
  Database db;
  Status s = LoadCsvText(db, "Flights",
                         "src,dst,count\n"
                         "NYC,LHR,3\n"
                         "NYC,CDG,2\n");
  ASSERT_TRUE(s.ok()) << s.ToString();
  const Relation* rel = db.Find("Flights");
  ASSERT_NE(rel, nullptr);
  EXPECT_EQ(rel->NumRows(), 2u);
  EXPECT_EQ(rel->column_names(),
            (std::vector<std::string>{"src", "dst", "count"}));
  // Strings interned; integers verbatim.
  EXPECT_EQ(rel->At(0, 0), db.dict().Lookup("NYC"));
  EXPECT_EQ(rel->At(0, 1), db.dict().Lookup("LHR"));
  EXPECT_EQ(rel->At(0, 2), 3);
  EXPECT_EQ(rel->At(1, 2), 2);
}

TEST(CsvTest, TrimsWhitespaceAndSkipsBlankLines) {
  Database db;
  Status s = LoadCsvText(db, "R",
                         " a , b \n"
                         " 1 ,  2 \n"
                         "\n"
                         "3,4\n");
  ASSERT_TRUE(s.ok()) << s.ToString();
  const Relation* rel = db.Find("R");
  EXPECT_EQ(rel->NumRows(), 2u);
  EXPECT_EQ(rel->column_names()[0], "a");
  EXPECT_EQ(rel->At(0, 0), 1);
  EXPECT_EQ(rel->At(1, 1), 4);
}

TEST(CsvTest, NegativeIntegersParse) {
  Database db;
  ASSERT_TRUE(LoadCsvText(db, "R", "a\n-17\n+4\n").ok());
  EXPECT_EQ(db.Find("R")->At(0, 0), -17);
  EXPECT_EQ(db.Find("R")->At(1, 0), 4);
}

TEST(CsvTest, RejectsInt64OverflowWithLineNumber) {
  Database db;
  // IsInteger accepts these literals; they must fail cleanly instead of
  // throwing std::out_of_range through the Status API.
  Status s = LoadCsvText(db, "R",
                         "a\n"
                         "1\n"
                         "99999999999999999999\n");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
  EXPECT_NE(s.message().find("line 3"), std::string::npos) << s.ToString();
  Status neg = LoadCsvText(db, "S", "a\n-99999999999999999999\n");
  ASSERT_FALSE(neg.ok());
  EXPECT_NE(neg.message().find("line 2"), std::string::npos);
  // The int64 boundary itself still parses.
  Database ok_db;
  ASSERT_TRUE(LoadCsvText(ok_db, "T",
                          "a\n9223372036854775807\n-9223372036854775808\n")
                  .ok());
  EXPECT_EQ(ok_db.Find("T")->At(0, 0), INT64_MAX);
  EXPECT_EQ(ok_db.Find("T")->At(1, 0), INT64_MIN);
}

TEST(CsvTest, OverflowErrorNamesOffendingColumn) {
  Database db;
  // The loader parses per column; a bad cell reports which column broke,
  // by index and header name, so wide files are debuggable.
  Status s = LoadCsvText(db, "R",
                         "id,amount,tag\n"
                         "1,2,x\n"
                         "2,99999999999999999999,y\n");
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("line 3"), std::string::npos) << s.ToString();
  EXPECT_NE(s.message().find("column 1"), std::string::npos) << s.ToString();
  EXPECT_NE(s.message().find("'amount'"), std::string::npos) << s.ToString();
}

TEST(CsvTest, MarksDictionaryColumns) {
  Database db;
  ASSERT_TRUE(LoadCsvText(db, "R",
                          "city,pop,mixed\n"
                          "NYC,8000000,1\n"
                          "SF,800000,abc\n")
                  .ok());
  const Relation* rel = db.Find("R");
  // Any column that interned at least one cell carries the dictionary
  // handle; pure-integer columns stay flat.
  EXPECT_TRUE(rel->column_dictionary(0));
  EXPECT_FALSE(rel->column_dictionary(1));
  EXPECT_TRUE(rel->column_dictionary(2));
  // Codes decode back through the shared dictionary.
  EXPECT_EQ(db.dict().String(rel->At(0, 0)), "NYC");
  EXPECT_EQ(db.dict().String(rel->At(1, 2)), "abc");
}

TEST(CsvTest, QuotedCellsFollowRfc4180) {
  Database db;
  Status s = LoadCsvText(db, "R",
                         "name,note,n\n"
                         "\"a,b\",plain,1\n"
                         "\"say \"\"hi\"\"\",\"x\",2\n");
  ASSERT_TRUE(s.ok()) << s.ToString();
  const Relation* rel = db.Find("R");
  ASSERT_EQ(rel->NumRows(), 2u);
  // The quoted comma stays inside one cell — later columns do not shift.
  EXPECT_EQ(rel->At(0, 0), db.dict().Lookup("a,b"));
  EXPECT_EQ(rel->At(0, 2), 1);
  EXPECT_EQ(rel->At(1, 0), db.dict().Lookup("say \"hi\""));
  EXPECT_EQ(rel->At(1, 2), 2);
  // Quoting affects only splitting; integer-looking content still parses.
  Database db2;
  ASSERT_TRUE(LoadCsvText(db2, "R", "a\n\"42\"\n").ok());
  EXPECT_EQ(db2.Find("R")->At(0, 0), 42);
}

TEST(CsvTest, RejectsMalformedQuotes) {
  Database db;
  Status unterminated = LoadCsvText(db, "R", "a\n\"oops\n");
  ASSERT_FALSE(unterminated.ok());
  EXPECT_NE(unterminated.message().find("line 2"), std::string::npos);
  Status trailing = LoadCsvText(db, "S", "a,b\n\"x\"y,1\n");
  ASSERT_FALSE(trailing.ok());
  EXPECT_NE(trailing.message().find("closing quote"), std::string::npos);
}

TEST(CsvTest, CrlfAndTrailingBlankLines) {
  Database db;
  Status s = LoadCsvText(db, "R",
                         "a,b\r\n"
                         "1,\"x,y\"\r\n"
                         "2,z\r\n"
                         "\r\n"
                         "\n");
  ASSERT_TRUE(s.ok()) << s.ToString();
  const Relation* rel = db.Find("R");
  ASSERT_EQ(rel->NumRows(), 2u);
  EXPECT_EQ(rel->At(0, 0), 1);
  EXPECT_EQ(rel->At(0, 1), db.dict().Lookup("x,y"));
  EXPECT_EQ(rel->At(1, 1), db.dict().Lookup("z"));
}

TEST(CsvTest, RejectsBadInput) {
  Database db;
  EXPECT_FALSE(LoadCsvText(db, "R", "").ok());           // no header
  EXPECT_FALSE(LoadCsvText(db, "S", "a,,b\n").ok());     // empty column
  EXPECT_FALSE(LoadCsvText(db, "T", "a,b\n1\n").ok());   // arity mismatch
  ASSERT_TRUE(LoadCsvText(db, "U", "a\n1\n").ok());
  EXPECT_FALSE(LoadCsvText(db, "U", "a\n1\n").ok());     // duplicate name
}

TEST(CsvTest, RoundTripsThroughText) {
  Database db;
  ASSERT_TRUE(LoadCsvText(db, "R", "a,b\nx,1\ny,2\n").ok());
  auto text = SaveCsvText(db, "R", /*render_dictionary=*/true);
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, "a,b\nx,1\ny,2\n");
  // Numeric rendering shows the interned codes instead (offset by the
  // dictionary base so they never collide with real integers).
  auto numeric = SaveCsvText(db, "R", /*render_dictionary=*/false);
  ASSERT_TRUE(numeric.ok());
  EXPECT_EQ(*numeric, "a,b\n" + std::to_string(Dictionary::kBase) + ",1\n" +
                          std::to_string(Dictionary::kBase + 1) + ",2\n");
}

TEST(CsvTest, SaveUnknownRelationFails) {
  Database db;
  EXPECT_EQ(SaveCsvText(db, "nope").status().code(),
            Status::Code::kNotFound);
}

TEST(CsvTest, FileRoundTrip) {
  // TempDir() honors TEST_TMPDIR; the random suffix keeps concurrent ctest
  // invocations of this binary from clobbering each other's file.
  const std::string path_str = ::testing::TempDir() + "lsens_csv_test_" +
                               std::to_string(std::random_device{}()) + ".csv";
  const char* path = path_str.c_str();
  {
    Database db;
    ASSERT_TRUE(LoadCsvText(db, "R", "k,v\n1,one\n2,two\n").ok());
    ASSERT_TRUE(SaveCsv(db, "R", path, /*render_dictionary=*/true).ok());
  }
  {
    Database db;
    Status s = LoadCsv(db, "R", path);
    ASSERT_TRUE(s.ok()) << s.ToString();
    const Relation* rel = db.Find("R");
    ASSERT_EQ(rel->NumRows(), 2u);
    EXPECT_EQ(rel->At(0, 0), 1);
    EXPECT_EQ(rel->At(1, 1), db.dict().Lookup("two"));
  }
  std::remove(path);
  Database db;
  EXPECT_EQ(LoadCsv(db, "R", "/nonexistent/nope.csv").code(),
            Status::Code::kNotFound);
}

}  // namespace
}  // namespace lsens
