// The flat open-addressing DynTable indexes (exec/flat_row_index.h): a
// randomized differential suite driving the flat layout against a simple
// map-based reference model through long insert/erase/rehash/
// tombstone-reuse streams, direct FlatRowIndex units, and the pinned
// single-probe stats of the DynTable hot path (one key hash and one probe
// sequence per Set/Adjust — the double-hash this layout removed must not
// come back). Runs in release, asan-ubsan, and the tsan preset.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <span>
#include <vector>

#include "common/rng.h"
#include "exec/dyn_table.h"
#include "exec/flat_row_index.h"

namespace lsens {
namespace {

// --- FlatRowIndex units --------------------------------------------------

TEST(FlatRowIndexTest, LocateInsertEraseRoundTrip) {
  FlatRowIndex index;
  auto never = [](uint32_t) { return false; };
  EXPECT_EQ(index.Locate(42, never).row, FlatRowIndex::kNoRow);

  FlatRowIndex::Cursor cur = index.Locate(42, never);
  index.InsertAt(cur, 42, 7);
  EXPECT_EQ(index.size(), 1u);
  FlatRowIndex::Cursor hit =
      index.Locate(42, [](uint32_t r) { return r == 7; });
  EXPECT_EQ(hit.row, 7u);

  index.EraseAt(hit);
  EXPECT_EQ(index.size(), 0u);
  EXPECT_EQ(index.Locate(42, [](uint32_t r) { return r == 7; }).row,
            FlatRowIndex::kNoRow);
}

TEST(FlatRowIndexTest, TombstoneSlotIsReused) {
  FlatRowIndex index;
  index.Reserve(4);
  const size_t buckets = index.bucket_count();
  auto eq = [](uint32_t) { return true; };
  index.InsertAt(index.Locate(5, eq), 5, 1);
  FlatRowIndex::Cursor hit = index.Locate(5, eq);
  const size_t slot = hit.slot;
  index.EraseAt(hit);
  // Re-inserting the same hash lands on the tombstone, not a fresh slot,
  // and triggers no rehash.
  FlatRowIndex::Cursor cur = index.Locate(5, [](uint32_t) { return false; });
  EXPECT_EQ(cur.slot, slot);
  index.InsertAt(cur, 5, 2);
  EXPECT_EQ(index.bucket_count(), buckets);
  EXPECT_EQ(index.rehashes(), 1u);  // only the initial Reserve
}

TEST(FlatRowIndexTest, ProbeChainSurvivesMiddleErase) {
  FlatRowIndex index;
  index.Reserve(8);
  // Three entries colliding on the same bucket (equal hash, distinct
  // identities): erasing the middle one must keep the last reachable —
  // tombstones keep probe chains intact.
  auto absent = [](uint32_t) { return false; };
  for (uint32_t r = 0; r < 3; ++r) {
    index.InsertAt(index.Locate(99, absent), 99, r);
  }
  index.EraseAt(index.Locate(99, [](uint32_t r) { return r == 1; }));
  EXPECT_EQ(index.Locate(99, [](uint32_t r) { return r == 0; }).row, 0u);
  EXPECT_EQ(index.Locate(99, [](uint32_t r) { return r == 2; }).row, 2u);
  EXPECT_EQ(index.Locate(99, [](uint32_t r) { return r == 1; }).row,
            FlatRowIndex::kNoRow);
}

TEST(FlatRowIndexTest, SetRowAtRebindsInPlace) {
  FlatRowIndex index;
  auto eq_any = [](uint32_t) { return true; };
  index.InsertAt(index.Locate(7, eq_any), 7, 3);
  FlatRowIndex::Cursor cur = index.Locate(7, eq_any);
  index.SetRowAt(cur, 9);
  EXPECT_EQ(index.Locate(7, eq_any).row, 9u);
  EXPECT_EQ(index.Locate(7, eq_any).slot, cur.slot);
  EXPECT_EQ(index.size(), 1u);
}

TEST(FlatRowIndexTest, RehashCompactsTombstones) {
  FlatRowIndex index;
  Rng rng(11);
  // Insert/erase far more entries than any bucket array holds: without
  // tombstone compaction on rehash the live count could not stay bounded
  // while the structure keeps answering.
  std::map<uint64_t, uint32_t> model;
  for (int step = 0; step < 4000; ++step) {
    uint64_t h = Mix64(rng.NextBounded(512) + 1);
    auto it = model.find(h);
    auto eq_model = [&](uint32_t r) { return r == it->second; };
    if (it != model.end() && rng.NextBounded(2) == 0) {
      FlatRowIndex::Cursor cur = index.Locate(h, eq_model);
      ASSERT_EQ(cur.row, it->second);
      index.EraseAt(cur);
      model.erase(it);
    } else if (it == model.end()) {
      uint32_t row = static_cast<uint32_t>(step);
      index.InsertAt(index.Locate(h, [](uint32_t) { return true; }), h,
                     row);
      model[h] = row;
    }
  }
  EXPECT_EQ(index.size(), model.size());
  EXPECT_GT(index.rehashes(), 0u);
  // Load factor invariant: live entries never exceed half the buckets.
  EXPECT_LE(2 * index.size(), index.bucket_count());
  for (const auto& [h, row] : model) {
    uint32_t expect = row;
    EXPECT_EQ(index.Locate(h, [&](uint32_t r) { return r == expect; }).row,
              expect);
  }
}

// --- DynTable differential model ----------------------------------------

// Reference model: exact counts by key, secondary lookups by scan.
struct ModelTable {
  std::map<std::vector<Value>, Count> rows;

  Count Get(const std::vector<Value>& key) const {
    auto it = rows.find(key);
    return it == rows.end() ? Count::Zero() : it->second;
  }
  void Set(const std::vector<Value>& key, Count c) {
    if (c.IsZero()) {
      rows.erase(key);
    } else {
      rows[key] = c;
    }
  }
  std::vector<std::vector<Value>> LookupByCol(int col, Value v) const {
    std::vector<std::vector<Value>> out;
    for (const auto& [key, c] : rows) {
      if (key[static_cast<size_t>(col)] == v) out.push_back(key);
    }
    return out;
  }
};

void ExpectTablesAgree(const DynTable& table, const ModelTable& model,
                       int step) {
  ASSERT_EQ(table.num_rows(), model.rows.size()) << "step " << step;
  size_t seen = 0;
  table.ForEachRow([&](uint32_t r) {
    ++seen;
    std::span<const Value> key = table.RowValues(r);
    std::vector<Value> k(key.begin(), key.end());
    EXPECT_EQ(table.RowCount(r), model.Get(k)) << "step " << step;
  });
  EXPECT_EQ(seen, model.rows.size()) << "step " << step;
}

class DynTableDifferentialTest : public ::testing::TestWithParam<uint64_t> {
};

// Long randomized op streams (upserts, signed adjustments, erasures, bulk
// reloads) against the reference model: every point read, every secondary
// lookup, and periodic full scans must agree while the flat indexes grow,
// tombstone, reuse slots, and rehash underneath.
TEST_P(DynTableDifferentialTest, MatchesMapModelThroughLongStreams) {
  Rng rng(GetParam() * 7919 + 13);
  const int kDomain = 9;  // small: collisions, deep groups, reuse
  DynTable table(AttributeSet{1, 2});
  const int by_first = table.AddIndex({0});
  const int by_second = table.AddIndex({1});
  ModelTable model;

  auto random_key = [&]() {
    return std::vector<Value>{
        static_cast<Value>(rng.NextBounded(kDomain)),
        static_cast<Value>(rng.NextBounded(kDomain))};
  };

  for (int step = 0; step < 5000; ++step) {
    std::vector<Value> key = random_key();
    switch (rng.NextBounded(10)) {
      case 0:
      case 1:
      case 2: {  // upsert (sometimes to zero = erase)
        Count c(rng.NextBounded(4));
        Count old = table.Set(key, c);
        EXPECT_EQ(old, model.Get(key)) << "step " << step;
        model.Set(key, c);
        break;
      }
      case 3:
      case 4:
      case 5: {  // signed adjustment, kept exact
        Count c(1 + rng.NextBounded(3));
        bool add = rng.NextBounded(2) == 0;
        Count old = model.Get(key);
        if (!add && old < c) add = true;  // stay unpoisoned
        ASSERT_TRUE(table.Adjust(key, c, add)) << "step " << step;
        model.Set(key, add ? old + c : old.SaturatingSub(c));
        break;
      }
      case 6:
      case 7: {  // point read
        EXPECT_EQ(table.Get(key), model.Get(key)) << "step " << step;
        break;
      }
      case 8: {  // secondary lookup vs model scan
        int col = rng.NextBounded(2) == 0 ? 0 : 1;
        Value v = key[static_cast<size_t>(col)];
        std::vector<uint32_t> rows;
        table.LookupIndex(col == 0 ? by_first : by_second, {&v, 1}, &rows);
        std::vector<std::vector<Value>> got;
        for (uint32_t r : rows) {
          std::span<const Value> stored = table.RowValues(r);
          got.emplace_back(stored.begin(), stored.end());
        }
        std::sort(got.begin(), got.end());
        EXPECT_EQ(got, model.LookupByCol(col, v)) << "step " << step;
        break;
      }
      case 9: {  // occasional bulk reload from the model snapshot
        if (rng.NextBounded(50) != 0) break;
        CountedRelation rel({1, 2});
        for (const auto& [k, c] : model.rows) rel.AppendRow(k, c);
        rel.Normalize();
        table.Load(rel);
        break;
      }
    }
    if (step % 500 == 499) ExpectTablesAgree(table, model, step);
  }
  ExpectTablesAgree(table, model, -1);
  EXPECT_FALSE(table.saturated());
  EXPECT_GT(table.stats().rehashes, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DynTableDifferentialTest,
                         ::testing::Values<uint64_t>(1, 2, 3, 4));

// --- single-probe stat pins ----------------------------------------------

// The flat layout's contract: one key hash and one probe sequence resolve
// lookup, insert, and erase. The multimap layout this replaced hashed
// twice on every Set/Adjust of an existing key (find + insert/erase);
// these pins fail if that regresses.
TEST(DynTableProbeStatsTest, SetAndAdjustHashExactlyOnce) {
  DynTable table(AttributeSet{1, 2});
  table.Set(std::vector<Value>{1, 10}, Count(3));

  DynTable::Stats before = table.stats();
  table.Set(std::vector<Value>{1, 10}, Count(5));  // existing, update
  DynTable::Stats after = table.stats();
  EXPECT_EQ(after.key_hashes - before.key_hashes, 1u);
  EXPECT_EQ(after.locates - before.locates, 1u);

  before = after;
  EXPECT_TRUE(table.Adjust(std::vector<Value>{1, 10}, Count(2), true));
  after = table.stats();
  EXPECT_EQ(after.key_hashes - before.key_hashes, 1u);
  EXPECT_EQ(after.locates - before.locates, 1u);

  before = after;
  table.Set(std::vector<Value>{1, 10}, Count::Zero());  // erase
  after = table.stats();
  // No secondary indexes: the erase too is one hash, one probe sequence.
  EXPECT_EQ(after.key_hashes - before.key_hashes, 1u);
  EXPECT_EQ(after.locates - before.locates, 1u);
}

TEST(DynTableProbeStatsTest, SecondaryIndexesAddOneHashEach) {
  DynTable table(AttributeSet{1, 2});
  table.AddIndex({0});
  table.AddIndex({1});

  DynTable::Stats before = table.stats();
  table.Set(std::vector<Value>{1, 10}, Count(3));  // insert
  DynTable::Stats after = table.stats();
  // Primary locate (1) plus one projected-key hash per secondary (2).
  EXPECT_EQ(after.key_hashes - before.key_hashes, 3u);
  EXPECT_EQ(after.locates - before.locates, 1u);

  before = after;
  table.Set(std::vector<Value>{1, 10}, Count::Zero());  // erase
  after = table.stats();
  EXPECT_EQ(after.key_hashes - before.key_hashes, 3u);
  EXPECT_EQ(after.locates - before.locates, 1u);
}

// --- memory accounting ---------------------------------------------------

TEST(DynTableMemoryTest, MemoryBytesTracksGrowth) {
  DynTable table(AttributeSet{1, 2});
  table.AddIndex({0});
  const size_t empty = table.MemoryBytes();
  for (int i = 0; i < 1000; ++i) {
    table.Set(std::vector<Value>{i, i * 2}, Count(1));
  }
  const size_t full = table.MemoryBytes();
  EXPECT_GT(full, empty);
  // At least the row storage itself must be accounted.
  EXPECT_GE(full, 1000 * 2 * sizeof(Value));
}

TEST(DynTableMemoryTest, AccountsIndexChainsAndFreeList) {
  // Two identical tables, one carrying a secondary index: the index's
  // per-row intrusive chains (next + prev) must show up in the byte
  // count, on top of whatever the bucket array and struct storage add.
  DynTable plain(AttributeSet{1, 2});
  DynTable indexed(AttributeSet{1, 2});
  indexed.AddIndex({0});
  for (int i = 0; i < 500; ++i) {
    plain.Set(std::vector<Value>{i, i}, Count(1));
    indexed.Set(std::vector<Value>{i, i}, Count(1));
  }
  EXPECT_GE(indexed.MemoryBytes(),
            plain.MemoryBytes() + 500 * 2 * sizeof(uint32_t));

  // Registering an index on an already-populated table accounts the
  // backfilled chains immediately.
  const size_t before = plain.MemoryBytes();
  plain.AddIndex({1});
  EXPECT_GE(plain.MemoryBytes(), before + 500 * 2 * sizeof(uint32_t));

  // Erasing every row parks the slots on the free list; the slot arrays
  // keep their capacity and the free list grows, so the accounted total
  // must not shrink below the populated figure.
  const size_t full = plain.MemoryBytes();
  for (int i = 0; i < 500; ++i) {
    plain.Set(std::vector<Value>{i, i}, Count::Zero());
  }
  EXPECT_EQ(plain.num_rows(), 0u);
  EXPECT_GE(plain.MemoryBytes(), full);
}

}  // namespace
}  // namespace lsens
