#include <gtest/gtest.h>

#include "query/explain.h"
#include "query/parser.h"
#include "sensitivity/tsens.h"
#include "test_util.h"

namespace lsens {
namespace {

Database FigureOneDb() {
  auto ex = testing::MakeFigure1Example();
  return std::move(ex.db);
}

TEST(ParserTest, ParsesBodyOnlyRule) {
  Database db = FigureOneDb();
  auto q = ParseQuery("  :- R1(A,B,C), R2(A,B,D), R3(A,E), R4(B,F)", db);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->num_atoms(), 4);
  EXPECT_EQ(q->atom(0).relation, "R1");
  EXPECT_EQ(q->atom(3).vars.size(), 2u);
  EXPECT_TRUE(q->Validate(db).ok());
}

TEST(ParserTest, ParsesHeadAndChecksFullCq) {
  Database db = FigureOneDb();
  auto ok = ParseQuery("Q(A,B,C,D,E,F) :- R1(A,B,C), R2(A,B,D), R3(A,E), "
                       "R4(B,F)",
                       db);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  // Projection in the head is rejected (full CQs only).
  auto projected =
      ParseQuery("Q(A,B) :- R1(A,B,C), R2(A,B,D), R3(A,E), R4(B,F)", db);
  EXPECT_EQ(projected.status().code(), Status::Code::kUnsupported);
  // Head variable not in the body.
  auto unknown = ParseQuery("Q(Z) :- R3(A,E)", db);
  EXPECT_FALSE(unknown.ok());
}

TEST(ParserTest, ParsesPredicates) {
  Database db = FigureOneDb();
  auto q = ParseQuery(":- R3(A,E), R4(B,F), A = 3, F != -2, E <= 10", db);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->atom(0).predicates.size(), 2u);  // A=3, E<=10 bind to R3
  ASSERT_EQ(q->atom(1).predicates.size(), 1u);  // F!=-2 binds to R4
  EXPECT_EQ(q->atom(0).predicates[0].op, Predicate::Op::kEq);
  EXPECT_EQ(q->atom(0).predicates[0].rhs, 3);
  EXPECT_EQ(q->atom(1).predicates[0].op, Predicate::Op::kNe);
  EXPECT_EQ(q->atom(1).predicates[0].rhs, -2);
  EXPECT_EQ(q->atom(0).predicates[1].op, Predicate::Op::kLe);
}

TEST(ParserTest, AllComparisonOperators) {
  Database db = FigureOneDb();
  auto q = ParseQuery(
      ":- R1(A,B,C), A = 1, A != 2, A < 9, A <= 9, A > 0, A >= 0", db);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->atom(0).predicates.size(), 6u);
}

TEST(ParserTest, RejectsMalformedInput) {
  Database db = FigureOneDb();
  EXPECT_FALSE(ParseQuery("R1(A,B,C)", db).ok());          // no ':-'
  EXPECT_FALSE(ParseQuery(":- ", db).ok());                // no atoms
  EXPECT_FALSE(ParseQuery(":- R1(A,B", db).ok());          // unclosed paren
  EXPECT_FALSE(ParseQuery(":- R1(A,,B)", db).ok());        // empty var
  EXPECT_FALSE(ParseQuery(":- R1(A,B,C) R2(A,B,D)", db).ok());  // no comma
  EXPECT_FALSE(ParseQuery(":- R1(A,B,C), A == 3", db).ok());    // bad op:
  // '==' parses '=' then fails on '= 3' -> error either way.
  EXPECT_FALSE(ParseQuery(":- R1(A,B,C), Z = 3", db).ok());  // unbound var
  EXPECT_FALSE(ParseQuery(":- R1(A,B,C), A = x", db).ok());  // non-integer
}

TEST(ParserTest, ParsedQueryComputesSensitivity) {
  auto ex = testing::MakeFigure1Example();
  auto q = ParseQuery(":- R1(A,B,C), R2(A,B,D), R3(A,E), R4(B,F)", ex.db);
  ASSERT_TRUE(q.ok());
  auto result = ComputeLocalSensitivity(*q, ex.db);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->local_sensitivity, Count(4));
}

TEST(ExplainTest, AcyclicReportMentionsTreeAndAlgorithm) {
  auto ex = testing::MakeFigure1Example();
  std::string report = ExplainQuery(ex.query, ex.db.attrs());
  EXPECT_NE(report.find("acyclic (GYO)"), std::string::npos);
  EXPECT_NE(report.find("TSensOverGhd"), std::string::npos);
  EXPECT_NE(report.find("R1"), std::string::npos);
  EXPECT_NE(report.find("link"), std::string::npos);
}

TEST(ExplainTest, PathQueryPicksAlgorithm1) {
  auto ex = testing::MakeFigure3Example();
  std::string report = ExplainQuery(ex.query, ex.db.attrs());
  EXPECT_NE(report.find("path query"), std::string::npos);
  EXPECT_NE(report.find("TSensPath (Algorithm 1"), std::string::npos);
}

TEST(ExplainTest, CyclicReportShowsDecomposition) {
  Database db;
  db.AddRelation("E0", {"A", "B"});
  db.AddRelation("E1", {"B", "C"});
  db.AddRelation("E2", {"C", "A"});
  ConjunctiveQuery q;
  q.AddAtom(db, "E0", {"A", "B"});
  q.AddAtom(db, "E1", {"B", "C"});
  q.AddAtom(db, "E2", {"C", "A"});
  std::string searched = ExplainQuery(q, db.attrs());
  EXPECT_NE(searched.find("cyclic"), std::string::npos);
  EXPECT_NE(searched.find("searched (width 2)"), std::string::npos);

  auto ghd = BuildGhd(q, {{0, 1}, {2}});
  ASSERT_TRUE(ghd.ok());
  std::string supplied = ExplainQuery(q, db.attrs(), &*ghd);
  EXPECT_NE(supplied.find("user-supplied (width 2)"), std::string::npos);
  EXPECT_NE(supplied.find("E0+E1"), std::string::npos);
}

TEST(ExplainTest, DisconnectedQueryRendersComponents) {
  Database db;
  db.AddRelation("R", {"A"});
  db.AddRelation("T", {"X"});
  ConjunctiveQuery q;
  q.AddAtom(db, "R", {"A"});
  q.AddAtom(db, "T", {"X"});
  std::string report = ExplainQuery(q, db.attrs());
  EXPECT_NE(report.find("component 0"), std::string::npos);
  EXPECT_NE(report.find("component 1"), std::string::npos);
}

}  // namespace
}  // namespace lsens
