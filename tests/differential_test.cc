// Differential and randomized sweeps across module boundaries: every
// component with two independent implementations (or an algebraic identity)
// is fuzzed against itself. Parameterized over seeds so failures pinpoint a
// reproducible stream.

#include <gtest/gtest.h>

#include <map>

#include "query/enumerate.h"
#include "query/eval.h"
#include "query/ghd.h"
#include "query/join_tree.h"
#include "query/parser.h"
#include "sensitivity/tsens.h"
#include "storage/csv.h"
#include "test_util.h"
#include "workload/tpch.h"

namespace lsens {
namespace {

using testing::MakeRandomAcyclicInstance;
using testing::RandomQuerySpec;

class SeededTest : public ::testing::TestWithParam<uint64_t> {};

// --- join algebra -------------------------------------------------------

TEST_P(SeededTest, JoinIsCommutativeUpToNormalization) {
  Rng rng(GetParam() * 13 + 1);
  for (int trial = 0; trial < 20; ++trial) {
    CountedRelation a({1, 2, 3});
    CountedRelation b({2, 3, 4});
    for (uint64_t i = 0; i < rng.NextBounded(12); ++i) {
      a.AppendRow({static_cast<Value>(rng.NextBounded(3)),
                   static_cast<Value>(rng.NextBounded(3)),
                   static_cast<Value>(rng.NextBounded(3))},
                  Count(1 + rng.NextBounded(4)));
    }
    for (uint64_t i = 0; i < rng.NextBounded(12); ++i) {
      b.AppendRow({static_cast<Value>(rng.NextBounded(3)),
                   static_cast<Value>(rng.NextBounded(3)),
                   static_cast<Value>(rng.NextBounded(3))},
                  Count(1 + rng.NextBounded(4)));
    }
    a.Normalize();
    b.Normalize();
    CountedRelation ab = NaturalJoin(a, b);
    CountedRelation ba = NaturalJoin(b, a);
    ASSERT_EQ(ab.NumRows(), ba.NumRows());
    for (size_t i = 0; i < ab.NumRows(); ++i) {
      EXPECT_EQ(CompareRows(ab.Row(i), ba.Row(i)), 0);
      EXPECT_EQ(ab.CountAt(i), ba.CountAt(i));
    }
  }
}

TEST_P(SeededTest, GroupByConservesTotalCount) {
  Rng rng(GetParam() * 17 + 2);
  for (int trial = 0; trial < 20; ++trial) {
    CountedRelation r({1, 2, 3});
    for (uint64_t i = 0; i < 1 + rng.NextBounded(20); ++i) {
      r.AppendRow({static_cast<Value>(rng.NextBounded(4)),
                   static_cast<Value>(rng.NextBounded(4)),
                   static_cast<Value>(rng.NextBounded(4))},
                  Count(1 + rng.NextBounded(5)));
    }
    r.Normalize();
    Count total = r.TotalCount();
    for (AttributeSet group :
         {AttributeSet{}, AttributeSet{1}, AttributeSet{2, 3},
          AttributeSet{1, 2, 3}}) {
      EXPECT_EQ(GroupBySum(r, group).TotalCount(), total);
    }
  }
}

TEST_P(SeededTest, JoinAssociativityOnChains) {
  Rng rng(GetParam() * 19 + 3);
  for (int trial = 0; trial < 15; ++trial) {
    auto random_rel = [&](AttributeSet attrs) {
      CountedRelation r(std::move(attrs));
      for (uint64_t i = 0; i < rng.NextBounded(10); ++i) {
        std::vector<Value> row(r.arity());
        for (auto& v : row) v = static_cast<Value>(rng.NextBounded(3));
        r.AppendRow(row, Count(1 + rng.NextBounded(3)));
      }
      r.Normalize();
      return r;
    };
    CountedRelation a = random_rel({1, 2});
    CountedRelation b = random_rel({2, 3});
    CountedRelation c = random_rel({3, 4});
    CountedRelation left = NaturalJoin(NaturalJoin(a, b), c);
    CountedRelation right = NaturalJoin(a, NaturalJoin(b, c));
    ASSERT_EQ(left.NumRows(), right.NumRows());
    for (size_t i = 0; i < left.NumRows(); ++i) {
      EXPECT_EQ(CompareRows(left.Row(i), right.Row(i)), 0);
      EXPECT_EQ(left.CountAt(i), right.CountAt(i));
    }
  }
}

// --- decomposition ------------------------------------------------------

TEST_P(SeededTest, GyoIsDeterministicAndValid) {
  Rng rng(GetParam() * 23 + 4);
  RandomQuerySpec spec;
  for (int trial = 0; trial < 15; ++trial) {
    auto ex = MakeRandomAcyclicInstance(rng, spec);
    auto f1 = BuildJoinForestGYO(ex.query);
    auto f2 = BuildJoinForestGYO(ex.query);
    ASSERT_TRUE(f1.ok());
    ASSERT_TRUE(f2.ok());
    ASSERT_EQ(f1->trees.size(), f2->trees.size());
    for (size_t t = 0; t < f1->trees.size(); ++t) {
      EXPECT_EQ(f1->trees[t].members(), f2->trees[t].members());
      EXPECT_EQ(f1->trees[t].root(), f2->trees[t].root());
      EXPECT_TRUE(f1->trees[t].ValidateAgainst(ex.query).ok());
      for (int atom : f1->trees[t].members()) {
        EXPECT_EQ(f1->trees[t].Parent(atom), f2->trees[t].Parent(atom));
      }
    }
  }
}

TEST_P(SeededTest, AllTriangleGhdsCountIdentically) {
  Rng rng(GetParam() * 29 + 5);
  for (int trial = 0; trial < 10; ++trial) {
    auto ex = testing::MakeRandomTriangleInstance(rng, 7, 3);
    auto brute = BruteForceCount(ex.query, ex.db);
    ASSERT_TRUE(brute.ok());
    for (auto bags : {std::vector<std::vector<int>>{{0, 1}, {2}},
                      std::vector<std::vector<int>>{{1, 2}, {0}},
                      std::vector<std::vector<int>>{{0, 2}, {1}},
                      std::vector<std::vector<int>>{{0, 1, 2}}}) {
      auto ghd = BuildGhd(ex.query, bags);
      ASSERT_TRUE(ghd.ok());
      auto count = CountGhd(ex.query, *ghd, ex.db);
      ASSERT_TRUE(count.ok());
      EXPECT_EQ(*count, *brute);
      auto enumerated = EnumerateJoin(ex.query, *ghd, ex.db);
      ASSERT_TRUE(enumerated.ok());
      EXPECT_EQ(enumerated->TotalCount(), *brute);
    }
  }
}

// --- parser round trip --------------------------------------------------

TEST_P(SeededTest, ParserRoundTripsGeneratedQueries) {
  Rng rng(GetParam() * 31 + 6);
  RandomQuerySpec spec;
  spec.predicate_probability = 0.0;  // ToString doesn't render predicates
  for (int trial = 0; trial < 15; ++trial) {
    auto ex = MakeRandomAcyclicInstance(rng, spec);
    std::string text = ex.query.ToString(ex.db.attrs());
    // ToString renders "Q :- body"; strip the informal head "Q ".
    auto parsed = ParseQuery(text.substr(1), ex.db);
    ASSERT_TRUE(parsed.ok())
        << text << " -> " << parsed.status().ToString();
    ASSERT_EQ(parsed->num_atoms(), ex.query.num_atoms());
    for (int i = 0; i < parsed->num_atoms(); ++i) {
      EXPECT_EQ(parsed->atom(i).relation, ex.query.atom(i).relation);
      EXPECT_EQ(parsed->atom(i).vars, ex.query.atom(i).vars);
    }
    // Same sensitivity either way.
    auto a = ComputeLocalSensitivity(ex.query, ex.db);
    auto b = ComputeLocalSensitivity(*parsed, ex.db);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->local_sensitivity, b->local_sensitivity);
  }
}

// --- storage round trips ------------------------------------------------

TEST_P(SeededTest, CsvRoundTripsRandomRelations) {
  Rng rng(GetParam() * 37 + 7);
  for (int trial = 0; trial < 10; ++trial) {
    Database db;
    auto* rel = db.AddRelation("R", {"a", "b", "c"});
    for (uint64_t i = 0; i < rng.NextBounded(30); ++i) {
      rel->AppendRow({static_cast<Value>(rng.NextInRange(-50, 50)),
                      static_cast<Value>(rng.NextBounded(10)),
                      static_cast<Value>(rng.NextInRange(-5, 5))});
    }
    auto text = SaveCsvText(db, "R");
    ASSERT_TRUE(text.ok());
    Database reloaded;
    ASSERT_TRUE(LoadCsvText(reloaded, "R", *text).ok());
    EXPECT_TRUE(reloaded.Find("R")->IdenticalTo(*db.Find("R")));
  }
}

// --- sensitivity algebra ------------------------------------------------

TEST_P(SeededTest, LsInvariantUnderAtomPermutation) {
  Rng rng(GetParam() * 41 + 8);
  RandomQuerySpec spec;
  spec.max_atoms = 4;
  for (int trial = 0; trial < 10; ++trial) {
    auto ex = MakeRandomAcyclicInstance(rng, spec);
    auto base = ComputeLocalSensitivity(ex.query, ex.db);
    ASSERT_TRUE(base.ok());
    // Rebuild the query with atoms reversed; the LS must not change.
    ConjunctiveQuery reversed;
    for (int i = ex.query.num_atoms() - 1; i >= 0; --i) {
      reversed.AddAtom(ex.query.atom(i));
    }
    auto flipped = ComputeLocalSensitivity(reversed, ex.db);
    ASSERT_TRUE(flipped.ok());
    EXPECT_EQ(base->local_sensitivity, flipped->local_sensitivity)
        << ex.query.ToString(ex.db.attrs());
  }
}

TEST_P(SeededTest, DuplicatingARowRaisesItsNeighborsNotItself) {
  // Bag-semantics sanity: duplicating tuple t doubles the paths through
  // t's values for *other* relations, while δ(t) itself is unchanged
  // (multiplicity tables exclude the tuple's own relation).
  Rng rng(GetParam() * 43 + 9);
  for (int trial = 0; trial < 10; ++trial) {
    testing::PaperExample ex;
    auto* r = ex.db.AddRelation("R", {"A", "B"});
    auto* s = ex.db.AddRelation("S", {"B", "C"});
    r->AppendRow({1, 2});
    s->AppendRow({2, 3});
    for (uint64_t i = 0; i < rng.NextBounded(4); ++i) r->AppendRow({1, 2});
    ex.query.AddAtom(ex.db, "R", {"A", "B"});
    ex.query.AddAtom(ex.db, "S", {"B", "C"});
    uint64_t copies = r->NumRows();
    auto result = ComputeLocalSensitivity(ex.query, ex.db);
    ASSERT_TRUE(result.ok());
    // δ of the S tuple = #R copies; δ of the R tuple = #S rows = 1.
    EXPECT_EQ(result->atoms[1].max_sensitivity, Count(copies));
    EXPECT_EQ(result->atoms[0].max_sensitivity, Count(1));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// --- TPC-H round trip through CSV (integration) --------------------------

TEST(DifferentialTest, TpchRelationsSurviveCsv) {
  TpchOptions opts;
  opts.scale = 0.0002;
  Database db = MakeTpchDatabase(opts);
  for (const auto& name : db.relation_names()) {
    auto text = SaveCsvText(db, name);
    ASSERT_TRUE(text.ok()) << name;
    Database reloaded;
    ASSERT_TRUE(LoadCsvText(reloaded, name, *text).ok()) << name;
    EXPECT_TRUE(reloaded.Find(name)->IdenticalTo(*db.Find(name))) << name;
  }
}

}  // namespace
}  // namespace lsens
