#include "test_util.h"

#include <algorithm>
#include <utility>

#include "common/macros.h"

namespace lsens::testing {

PaperExample MakeFigure1Example() {
  PaperExample ex;
  Dictionary& d = ex.db.dict();
  auto* r1 = ex.db.AddRelation("R1", {"A", "B", "C"});
  auto* r2 = ex.db.AddRelation("R2", {"A", "B", "D"});
  auto* r3 = ex.db.AddRelation("R3", {"A", "E"});
  auto* r4 = ex.db.AddRelation("R4", {"B", "F"});
  auto v = [&](const char* s) { return d.Intern(s); };
  r1->AppendRow({v("a1"), v("b1"), v("c1")});
  r1->AppendRow({v("a1"), v("b2"), v("c1")});
  r1->AppendRow({v("a2"), v("b1"), v("c1")});
  r2->AppendRow({v("a1"), v("b1"), v("d1")});
  r2->AppendRow({v("a2"), v("b2"), v("d2")});
  r3->AppendRow({v("a1"), v("e1")});
  r3->AppendRow({v("a2"), v("e1")});
  r3->AppendRow({v("a2"), v("e2")});
  r4->AppendRow({v("b1"), v("f1")});
  r4->AppendRow({v("b2"), v("f1")});
  r4->AppendRow({v("b2"), v("f2")});
  ex.query.AddAtom(ex.db, "R1", {"A", "B", "C"});
  ex.query.AddAtom(ex.db, "R2", {"A", "B", "D"});
  ex.query.AddAtom(ex.db, "R3", {"A", "E"});
  ex.query.AddAtom(ex.db, "R4", {"B", "F"});
  return ex;
}

PaperExample MakeFigure3Example() {
  PaperExample ex;
  Dictionary& d = ex.db.dict();
  auto* r1 = ex.db.AddRelation("R1", {"A", "B"});
  auto* r2 = ex.db.AddRelation("R2", {"B", "C"});
  auto* r3 = ex.db.AddRelation("R3", {"C", "D"});
  auto* r4 = ex.db.AddRelation("R4", {"D", "E"});
  auto v = [&](const char* s) { return d.Intern(s); };
  r1->AppendRow({v("a1"), v("b1")});
  r1->AppendRow({v("a2"), v("b1")});
  r2->AppendRow({v("b1"), v("c1")});
  r2->AppendRow({v("b2"), v("c2")});
  r3->AppendRow({v("c1"), v("d1")});
  r3->AppendRow({v("c1"), v("d2")});
  r4->AppendRow({v("d1"), v("e1")});
  r4->AppendRow({v("d2"), v("e1")});
  ex.query.AddAtom(ex.db, "R1", {"A", "B"});
  ex.query.AddAtom(ex.db, "R2", {"B", "C"});
  ex.query.AddAtom(ex.db, "R3", {"C", "D"});
  ex.query.AddAtom(ex.db, "R4", {"D", "E"});
  return ex;
}

PaperExample MakeRandomAcyclicInstance(Rng& rng,
                                       const RandomQuerySpec& spec) {
  PaperExample ex;
  const int num_atoms = static_cast<int>(
      rng.NextInRange(spec.min_atoms, spec.max_atoms));

  // Build the query as a random join tree: atom i > 0 shares a nonempty
  // subset of a random earlier atom's variables and may add fresh ones.
  int next_attr = 0;
  std::vector<std::vector<std::string>> atom_vars;
  for (int i = 0; i < num_atoms; ++i) {
    std::vector<std::string> vars;
    if (i == 0) {
      int count = static_cast<int>(
          rng.NextInRange(1, spec.max_attrs_per_atom));
      for (int c = 0; c < count; ++c) {
        vars.push_back("x" + std::to_string(next_attr++));
      }
    } else {
      int parent = static_cast<int>(rng.NextInRange(0, i - 1));
      const auto& pvars = atom_vars[static_cast<size_t>(parent)];
      // Nonempty random subset of the parent's variables.
      size_t take = 1 + rng.NextBounded(pvars.size());
      std::vector<size_t> idx(pvars.size());
      for (size_t j = 0; j < idx.size(); ++j) idx[j] = j;
      for (size_t j = 0; j < take; ++j) {
        size_t pick = j + rng.NextBounded(idx.size() - j);
        std::swap(idx[j], idx[pick]);
        vars.push_back(pvars[idx[j]]);
      }
      if (spec.allow_exclusive_attrs &&
          static_cast<int>(vars.size()) < spec.max_attrs_per_atom &&
          rng.NextDouble() < 0.5) {
        vars.push_back("x" + std::to_string(next_attr++));
      }
    }
    atom_vars.push_back(std::move(vars));
  }

  for (int i = 0; i < num_atoms; ++i) {
    const auto& vars = atom_vars[static_cast<size_t>(i)];
    std::string name = "R" + std::to_string(i);
    auto* rel = ex.db.AddRelation(name, vars);
    int rows = static_cast<int>(rng.NextInRange(0, spec.max_rows));
    std::vector<Value> row(vars.size());
    for (int r = 0; r < rows; ++r) {
      for (auto& cell : row) {
        cell = static_cast<Value>(rng.NextBounded(
            static_cast<uint64_t>(spec.domain_size)));
      }
      rel->AppendRow(row);
    }
    int atom = ex.query.AddAtom(ex.db, name, vars);
    for (const auto& var : vars) {
      if (rng.NextDouble() < spec.predicate_probability) {
        Predicate p;
        p.var = ex.db.attrs().Lookup(var);
        int op = static_cast<int>(rng.NextBounded(6));
        p.op = static_cast<Predicate::Op>(op);
        p.rhs = static_cast<Value>(
            rng.NextBounded(static_cast<uint64_t>(spec.domain_size)));
        ex.query.AddPredicate(atom, p);
      }
    }
  }
  return ex;
}

PaperExample MakeRandomTriangleInstance(Rng& rng, int max_rows,
                                        int domain_size) {
  PaperExample ex;
  for (int i = 0; i < 3; ++i) {
    std::vector<std::string> vars;
    if (i == 0) vars = {"A", "B"};
    if (i == 1) vars = {"B", "C"};
    if (i == 2) vars = {"C", "A"};
    std::string name = "E" + std::to_string(i);
    auto* rel = ex.db.AddRelation(name, vars);
    int rows = static_cast<int>(rng.NextInRange(0, max_rows));
    for (int r = 0; r < rows; ++r) {
      Value x = static_cast<Value>(
          rng.NextBounded(static_cast<uint64_t>(domain_size)));
      Value y = static_cast<Value>(
          rng.NextBounded(static_cast<uint64_t>(domain_size)));
      rel->AppendRow({x, y});
    }
    ex.query.AddAtom(ex.db, name, vars);
  }
  return ex;
}

PaperExample MakeStreamInstance(Rng& rng, StreamShape shape) {
  switch (shape) {
    case StreamShape::kPath:
      return MakeFigure3Example();
    case StreamShape::kTree: {
      RandomQuerySpec spec;
      spec.min_atoms = 3;
      spec.max_atoms = 4;
      spec.predicate_probability = 0.0;
      return MakeRandomAcyclicInstance(rng, spec);
    }
    case StreamShape::kTriangle:
      return MakeRandomTriangleInstance(rng, /*max_rows=*/6,
                                        /*domain_size=*/3);
  }
  LSENS_CHECK_MSG(false, "unknown StreamShape");
  return {};
}

std::vector<std::string> QueryRelationNames(const ConjunctiveQuery& q) {
  std::vector<std::string> names;
  names.reserve(static_cast<size_t>(q.num_atoms()));
  for (int i = 0; i < q.num_atoms(); ++i) {
    names.push_back(q.atom(i).relation);
  }
  return names;
}

namespace {

std::vector<Value> RandomRow(Rng& rng, size_t arity, int domain) {
  std::vector<Value> row(arity);
  for (Value& v : row) {
    v = static_cast<Value>(rng.NextBounded(static_cast<uint64_t>(domain)));
  }
  return row;
}

}  // namespace

DatabaseDelta MakeRandomDelta(Rng& rng, const Database& db,
                              const std::vector<std::string>& relations,
                              int domain, size_t max_ops) {
  LSENS_CHECK(!relations.empty() && max_ops > 0);
  const Relation* rel =
      db.Find(relations[rng.NextBounded(relations.size())]);
  LSENS_CHECK(rel != nullptr);
  RelationDelta rd;
  rd.relation = rel->name();
  const size_t ops = 1 + rng.NextBounded(max_ops);
  const size_t n = rel->NumRows();
  for (size_t i = 0; i < ops; ++i) {
    if (n > rd.delete_rows.size() && rng.NextBounded(2) == 0) {
      // Distinct random indices: retry a few times, then skip.
      for (int attempt = 0; attempt < 4; ++attempt) {
        size_t idx = rng.NextBounded(n);
        if (std::find(rd.delete_rows.begin(), rd.delete_rows.end(), idx) ==
            rd.delete_rows.end()) {
          rd.delete_rows.push_back(idx);
          break;
        }
      }
    } else {
      rd.inserts.push_back(RandomRow(rng, rel->arity(), domain));
    }
  }
  DatabaseDelta delta;
  delta.push_back(std::move(rd));
  return delta;
}

void ApplyRandomMutation(Rng& rng, Database& db,
                         const std::vector<std::string>& relations,
                         int domain, size_t max_ops) {
  LSENS_CHECK(!relations.empty() && max_ops > 0);
  if (rng.NextBounded(2) == 0) {
    // Batched path: one atomic DatabaseDelta.
    DatabaseDelta delta = MakeRandomDelta(rng, db, relations, domain, max_ops);
    LSENS_CHECK(db.ApplyDelta(delta).ok());
    return;
  }
  Relation* rel = db.Find(relations[rng.NextBounded(relations.size())]);
  LSENS_CHECK(rel != nullptr);
  const size_t ops = 1 + rng.NextBounded(max_ops);
  for (size_t i = 0; i < ops; ++i) {
    if (rel->NumRows() > 0 && rng.NextBounded(2) == 0) {
      rel->SwapRemoveRow(rng.NextBounded(rel->NumRows()));
    } else {
      rel->AppendRow(RandomRow(rng, rel->arity(), domain));
    }
  }
}

}  // namespace lsens::testing
