// Pins every lsens-lint rule against the fixture corpus under
// tools/lint_fixtures/: each rule has a must-fire tree (the rule reports
// the planted violation) and a must-pass tree (the sanctioned idiom stays
// silent), so the lint itself is tested — a rule that silently stops
// firing breaks these, not just the code it was guarding. The suite ends
// with the whole-repo clean run (the same gate CI applies) and a
// determinism pin on the report format.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "lsens_lint.h"

namespace {

using lsens_lint::Allow;
using lsens_lint::Finding;
using lsens_lint::FormatReport;
using lsens_lint::Report;
using lsens_lint::RunLint;

std::filesystem::path Fixture(const std::string& name) {
  return std::filesystem::path(LSENS_LINT_FIXTURE_DIR) / name;
}

int CountRule(const Report& report, const std::string& rule) {
  return static_cast<int>(
      std::count_if(report.findings.begin(), report.findings.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

TEST(LintHashFold, FiresOnCompetingFold) {
  const Report report = RunLint(Fixture("hash_fold_bad"));
  // Magic constant + direct Mix64 reference + HashValueFold redefinition.
  EXPECT_EQ(CountRule(report, "hash-fold"), 3) << FormatReport(report);
  EXPECT_EQ(static_cast<int>(report.findings.size()),
            CountRule(report, "hash-fold"))
      << FormatReport(report);
}

TEST(LintHashFold, SilentOnSharedFoldCallers) {
  const Report report = RunLint(Fixture("hash_fold_good"));
  EXPECT_TRUE(report.findings.empty()) << FormatReport(report);
}

TEST(LintUnorderedIter, FiresOnRangeForAndIteratorLoop) {
  const Report report = RunLint(Fixture("unordered_iter_bad"));
  EXPECT_EQ(CountRule(report, "unordered-iter"), 2) << FormatReport(report);
}

TEST(LintUnorderedIter, SilentOnAllowedAndFindOnlyUses) {
  const Report report = RunLint(Fixture("unordered_iter_good"));
  EXPECT_TRUE(report.findings.empty()) << FormatReport(report);
  // Both the declaration-site allow and the loop-site allow must surface
  // in the audit — silence there would make the allow list unreviewable.
  ASSERT_EQ(report.allows.size(), 2u) << FormatReport(report);
  for (const Allow& a : report.allows) {
    EXPECT_EQ(a.rule, "unordered-iter");
    EXPECT_FALSE(a.reason.empty());
  }
}

TEST(LintLayering, FiresOnUpwardIncludes) {
  const Report report = RunLint(Fixture("layering_bad"));
  // storage -> exec and storage -> query.
  EXPECT_EQ(CountRule(report, "layering"), 2) << FormatReport(report);
}

TEST(LintLayering, SilentOnDownwardIncludes) {
  const Report report = RunLint(Fixture("layering_good"));
  EXPECT_TRUE(report.findings.empty()) << FormatReport(report);
}

TEST(LintEntropy, FiresOnRandRandomDeviceAndClock) {
  const Report report = RunLint(Fixture("entropy_bad"));
  // random_device + rand() + steady_clock.
  EXPECT_EQ(CountRule(report, "entropy"), 3) << FormatReport(report);
}

TEST(LintEntropy, SilentInEntropyHomesAndSeededConsumers) {
  const Report report = RunLint(Fixture("entropy_good"));
  EXPECT_TRUE(report.findings.empty()) << FormatReport(report);
}

TEST(LintRowMaterialize, FiresOnRelationRowInsideLoops) {
  const Report report = RunLint(Fixture("row_materialize_bad"));
  // The range-for body call and the while-body call on Relation-typed
  // receivers; the CountedRelation call (span-returning Row) stays silent.
  EXPECT_EQ(CountRule(report, "row-materialize"), 2) << FormatReport(report);
  EXPECT_EQ(static_cast<int>(report.findings.size()),
            CountRule(report, "row-materialize"))
      << FormatReport(report);
}

TEST(LintRowMaterialize, SilentOnColumnSpansBuffersAndAllowedColdLoops) {
  const Report report = RunLint(Fixture("row_materialize_good"));
  EXPECT_TRUE(report.findings.empty()) << FormatReport(report);
  // The cold-loop allow must surface in the audit.
  ASSERT_EQ(report.allows.size(), 1u) << FormatReport(report);
  EXPECT_EQ(report.allows[0].rule, "row-materialize");
  EXPECT_FALSE(report.allows[0].reason.empty());
}

TEST(LintAllowReason, FiresOnBareAndNonAllowlistableAllows) {
  const Report report = RunLint(Fixture("allow_reason_bad"));
  EXPECT_EQ(CountRule(report, "allow-reason"), 2) << FormatReport(report);
  // The reasonless allow grants nothing: the loop under it still fires.
  EXPECT_EQ(CountRule(report, "unordered-iter"), 1) << FormatReport(report);
}

// The gate itself: the real tree must be clean, and the seeded audit
// entries (lookup-only interning tables, the plan-cache store walks) must
// be present so reviewers see every sanctioned unordered iteration.
TEST(LintTree, WholeTreeIsClean) {
  const Report report = RunLint(LSENS_LINT_TREE_ROOT);
  EXPECT_GE(report.files_scanned, 80) << "src/ went missing?";
  EXPECT_TRUE(report.findings.empty()) << FormatReport(report);
  EXPECT_GE(report.allows.size(), 7u) << FormatReport(report);
}

TEST(LintTree, ReportIsDeterministic) {
  const std::string a = FormatReport(RunLint(LSENS_LINT_TREE_ROOT));
  const std::string b = FormatReport(RunLint(LSENS_LINT_TREE_ROOT));
  EXPECT_EQ(a, b);
}

}  // namespace
