#ifndef LSENS_TESTS_TEST_UTIL_H_
#define LSENS_TESTS_TEST_UTIL_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "query/conjunctive_query.h"
#include "storage/database.h"

namespace lsens::testing {

// Fixture data for the paper's running examples.
struct PaperExample {
  Database db;
  ConjunctiveQuery query;
};

// Figure 1: R1(A,B,C), R2(A,B,D), R3(A,E), R4(B,F); |Q(D)| = 1,
// LS = 4 with most sensitive tuple R1(a2, b2, c1).
PaperExample MakeFigure1Example();

// Figure 3 (clean variant): Qpath-4(A..E) :- R1(A,B),R2(B,C),R3(C,D),R4(D,E)
// with R1 = {(a1,b1),(a2,b1)}, R2 = {(b1,c1),(b2,c2)},
// R3 = {(c1,d1),(c1,d2)}, R4 = {(d1,e1),(d2,e1)}; |Q(D)| = 4 and the most
// sensitive tuple is R2(b1, c1) with sensitivity 4.
PaperExample MakeFigure3Example();

// Random-instance generators for property-based tests. Values are drawn
// from a small domain so joins collide; duplicate rows are possible (bag
// semantics must handle them).
struct RandomQuerySpec {
  int min_atoms = 2;
  int max_atoms = 5;
  int max_attrs_per_atom = 3;
  int max_rows = 8;
  int domain_size = 3;
  double predicate_probability = 0.15;
  bool allow_exclusive_attrs = true;
};

// Generates a random acyclic query (built as an explicit join tree: each
// atom shares a nonempty attribute subset with its parent) plus a random
// database instance for it.
PaperExample MakeRandomAcyclicInstance(Rng& rng, const RandomQuerySpec& spec);

// Generates a random instance of the triangle query
// Q(A,B,C) :- R1(A,B), R2(B,C), R3(C,A)  (cyclic).
PaperExample MakeRandomTriangleInstance(Rng& rng, int max_rows,
                                        int domain_size);

// --- Seeded stream workloads ---------------------------------------------
// Shared by the streaming suites (incremental_test, plan_cache_test,
// serving_test): one seed determines both the instance build and the delta
// stream, so every suite replays the identical workload family instead of
// keeping its own diverging copy of the generator.

// Query shapes the streaming suites replay.
enum class StreamShape { kPath, kTree, kTriangle };

// A db+query instance for `shape`: path = the Figure 3 running example
// (non-trivial by construction), tree = a random acyclic instance,
// triangle = a random cyclic instance.
PaperExample MakeStreamInstance(Rng& rng, StreamShape shape);

// The query's relation names in atom order (an atom per element, so
// relations mentioned by more atoms are mutated proportionally more often).
std::vector<std::string> QueryRelationNames(const ConjunctiveQuery& q);

// One randomized batch of 1..max_ops inserts/deletes against a single
// random relation of `relations`, returned as a DatabaseDelta that applies
// cleanly through Database::ApplyDelta (delete indices are distinct and in
// range for the relation's current size).
DatabaseDelta MakeRandomDelta(Rng& rng, const Database& db,
                              const std::vector<std::string>& relations,
                              int domain, size_t max_ops = 3);

// Applies one randomized batch (1..max_ops inserts/deletes) to a random
// relation of `relations`, mixing the direct mutators
// (AppendRow/SwapRemoveRow) and the batched ApplyDelta path so streams
// exercise both changelog producers.
void ApplyRandomMutation(Rng& rng, Database& db,
                         const std::vector<std::string>& relations,
                         int domain, size_t max_ops = 3);

}  // namespace lsens::testing

#endif  // LSENS_TESTS_TEST_UTIL_H_
